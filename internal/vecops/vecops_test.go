package vecops

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestDotAndFlops(t *testing.T) {
	var fc FlopCounter
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y, &fc); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
	if fc.Count() != 6 {
		t.Fatalf("flops = %d, want 6", fc.Count())
	}
	fc.Reset()
	if fc.Count() != 0 {
		t.Fatalf("Reset did not zero")
	}
}

func TestNilCounterSafe(t *testing.T) {
	var fc *FlopCounter
	fc.Add(10)
	if fc.Count() != 0 {
		t.Fatalf("nil counter count = %d", fc.Count())
	}
	fc.Reset()
	_ = Dot([]float64{1}, []float64{1}, nil)
}

func TestAxpyXpayScale(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, -1}, y, nil)
	if y[0] != 7 || y[1] != -1 {
		t.Fatalf("Axpy = %v", y)
	}
	d := []float64{1, 2}
	Xpay([]float64{10, 10}, 0.5, d, nil)
	if d[0] != 10.5 || d[1] != 11 {
		t.Fatalf("Xpay = %v", d)
	}
	Scale(-1, d, nil)
	if d[0] != -10.5 {
		t.Fatalf("Scale = %v", d)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x, nil); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := NormInf(x); got != 4 {
		t.Fatalf("NormInf = %v, want 4", got)
	}
	Fill(x, 2)
	if x[0] != 2 || x[1] != 2 {
		t.Fatalf("Fill = %v", x)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"dot":  func() { Dot([]float64{1}, []float64{1, 2}, nil) },
		"axpy": func() { Axpy(1, []float64{1}, []float64{1, 2}, nil) },
		"xpay": func() { Xpay([]float64{1}, 1, []float64{1, 2}, nil) },
		"copy": func() { Copy([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFlopCounterConcurrent(t *testing.T) {
	var fc FlopCounter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				fc.Add(1)
			}
		}()
	}
	wg.Wait()
	if fc.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", fc.Count())
	}
}

// Property: Dot is symmetric and linear in the first argument.
func TestQuickDotLinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i], y[i], z[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		a := rng.NormFloat64()
		// (a·x + z)ᵀ y == a·(xᵀy) + zᵀy
		xz := make([]float64, n)
		for i := range xz {
			xz[i] = a*x[i] + z[i]
		}
		lhs := Dot(xz, y, nil)
		rhs := a*Dot(x, y, nil) + Dot(z, y, nil)
		scale := math.Abs(lhs) + math.Abs(rhs) + 1
		return math.Abs(lhs-rhs) < 1e-10*scale && math.Abs(Dot(x, y, nil)-Dot(y, x, nil)) < 1e-12*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDot2MatchesTwoDots(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := make([]float64, 57)
	y := make([]float64, 57)
	z := make([]float64, 57)
	for i := range x {
		x[i], y[i], z[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
	}
	var fc FlopCounter
	xy, zy := Dot2(x, y, z, &fc)
	// Bit-identical to the unfused reference: same accumulation order.
	if xy != Dot(x, y, nil) || zy != Dot(z, y, nil) {
		t.Fatalf("Dot2 = (%v, %v), want (%v, %v)", xy, zy, Dot(x, y, nil), Dot(z, y, nil))
	}
	if fc.Count() != 4*57 {
		t.Fatalf("flops = %d, want %d", fc.Count(), 4*57)
	}
}

func TestFusedCGUpdateMatchesUnfused(t *testing.T) {
	const n = 43
	rng := rand.New(rand.NewSource(22))
	mk := func() []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	u, w, p, s, x, r := mk(), mk(), mk(), mk(), mk(), mk()
	alpha, beta := 0.37, -0.81
	// Unfused reference on copies.
	cp := func(v []float64) []float64 { return append([]float64(nil), v...) }
	p2, s2, x2, r2 := cp(p), cp(s), cp(x), cp(r)
	Xpay(u, beta, p2, nil)
	Xpay(w, beta, s2, nil)
	Axpy(alpha, p2, x2, nil)
	Axpy(-alpha, s2, r2, nil)

	var fc FlopCounter
	rr := FusedCGUpdate(alpha, beta, u, w, p, s, x, r, &fc)
	for i := 0; i < n; i++ {
		if p[i] != p2[i] || s[i] != s2[i] || x[i] != x2[i] || r[i] != r2[i] {
			t.Fatalf("fused update diverges at %d: p %v/%v s %v/%v x %v/%v r %v/%v",
				i, p[i], p2[i], s[i], s2[i], x[i], x2[i], r[i], r2[i])
		}
	}
	if want := Dot(r2, r2, nil); rr != want {
		t.Fatalf("rr = %v, want %v", rr, want)
	}
	if fc.Count() != 10*n {
		t.Fatalf("flops = %d, want %d", fc.Count(), 10*n)
	}
}

func TestFusedKernelLengthMismatchPanics(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic on length mismatch", name)
			}
		}()
		f()
	}
	a, b := make([]float64, 3), make([]float64, 2)
	check("Dot2", func() { Dot2(a, b, a, nil) })
	check("FusedCGUpdate", func() { FusedCGUpdate(1, 1, a, a, a, b, a, a, nil) })
}

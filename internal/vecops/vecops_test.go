package vecops

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestDotAndFlops(t *testing.T) {
	var fc FlopCounter
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y, &fc); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
	if fc.Count() != 6 {
		t.Fatalf("flops = %d, want 6", fc.Count())
	}
	fc.Reset()
	if fc.Count() != 0 {
		t.Fatalf("Reset did not zero")
	}
}

func TestNilCounterSafe(t *testing.T) {
	var fc *FlopCounter
	fc.Add(10)
	if fc.Count() != 0 {
		t.Fatalf("nil counter count = %d", fc.Count())
	}
	fc.Reset()
	_ = Dot([]float64{1}, []float64{1}, nil)
}

func TestAxpyXpayScale(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, -1}, y, nil)
	if y[0] != 7 || y[1] != -1 {
		t.Fatalf("Axpy = %v", y)
	}
	d := []float64{1, 2}
	Xpay([]float64{10, 10}, 0.5, d, nil)
	if d[0] != 10.5 || d[1] != 11 {
		t.Fatalf("Xpay = %v", d)
	}
	Scale(-1, d, nil)
	if d[0] != -10.5 {
		t.Fatalf("Scale = %v", d)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x, nil); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := NormInf(x); got != 4 {
		t.Fatalf("NormInf = %v, want 4", got)
	}
	Fill(x, 2)
	if x[0] != 2 || x[1] != 2 {
		t.Fatalf("Fill = %v", x)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"dot":  func() { Dot([]float64{1}, []float64{1, 2}, nil) },
		"axpy": func() { Axpy(1, []float64{1}, []float64{1, 2}, nil) },
		"xpay": func() { Xpay([]float64{1}, 1, []float64{1, 2}, nil) },
		"copy": func() { Copy([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFlopCounterConcurrent(t *testing.T) {
	var fc FlopCounter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				fc.Add(1)
			}
		}()
	}
	wg.Wait()
	if fc.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", fc.Count())
	}
}

// Property: Dot is symmetric and linear in the first argument.
func TestQuickDotLinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i], y[i], z[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		a := rng.NormFloat64()
		// (a·x + z)ᵀ y == a·(xᵀy) + zᵀy
		xz := make([]float64, n)
		for i := range xz {
			xz[i] = a*x[i] + z[i]
		}
		lhs := Dot(xz, y, nil)
		rhs := a*Dot(x, y, nil) + Dot(z, y, nil)
		scale := math.Abs(lhs) + math.Abs(rhs) + 1
		return math.Abs(lhs-rhs) < 1e-10*scale && math.Abs(Dot(x, y, nil)-Dot(y, x, nil)) < 1e-12*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

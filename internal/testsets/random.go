package testsets

import (
	"math/rand"

	"fsaicomm/internal/sparse"
)

// RandomCSR draws a rows×cols matrix with each entry present independently
// with probability density and standard-normal values. Deterministic per
// rng state; shared by the sparse codec and algebra tests.
func RandomCSR(rng *rand.Rand, rows, cols int, density float64) *sparse.CSR {
	c := sparse.NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				c.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return c.ToCSR()
}

// SPDOptions shapes RandomSPD draws.
type SPDOptions struct {
	// Diag is the diagonal value (must dominate the off-diagonal mass for
	// the result to be SPD).
	Diag float64
	// Chain, when nonzero, couples i to i-1 with this value so the matrix
	// graph is connected.
	Chain float64
	// Couplings is the number of random symmetric off-diagonal draws.
	Couplings int
	// Off draws one off-diagonal value.
	Off func(*rand.Rand) float64
}

// RandomSPD draws an n×n symmetric diagonally dominant matrix: constant
// diagonal, optional chain sub-diagonal, plus Couplings random symmetric
// entries at positions and values drawn from rng. The FSAI property tests
// use these as their universe of SPD inputs; deterministic per rng state.
func RandomSPD(rng *rand.Rand, n int, o SPDOptions) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, o.Diag)
		if o.Chain != 0 && i > 0 {
			c.AddSym(i, i-1, o.Chain)
		}
	}
	for k := 0; k < o.Couplings; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			c.AddSym(i, j, o.Off(rng))
		}
	}
	return c.ToCSR()
}

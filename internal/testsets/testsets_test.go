package testsets

import (
	"testing"
)

func TestTable1Catalog(t *testing.T) {
	specs := Table1()
	if len(specs) != 39 {
		t.Fatalf("Table 1 has %d entries, want 39", len(specs))
	}
	seen := map[string]bool{}
	for i, s := range specs {
		if s.ID != i+1 {
			t.Fatalf("entry %d has ID %d", i, s.ID)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Class == "" {
			t.Fatalf("%s has empty class", s.Name)
		}
	}
}

func TestTable2Catalog(t *testing.T) {
	specs := Table2()
	if len(specs) != 8 {
		t.Fatalf("Table 2 has %d entries, want 8", len(specs))
	}
}

func TestAllMatricesGenerateValidSPDish(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix generation sweep skipped in -short")
	}
	for _, s := range append(Table1(), Table2()...) {
		a := s.Generate()
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !a.IsSymmetric(1e-12) {
			t.Fatalf("%s: not symmetric", s.Name)
		}
		if a.Rows < 500 {
			t.Fatalf("%s: too small (%d rows)", s.Name, a.Rows)
		}
		for i := 0; i < a.Rows; i++ {
			if a.At(i, i) <= 0 {
				t.Fatalf("%s: non-positive diagonal at %d", s.Name, i)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Table1()[2]
	a, b := s.Generate(), s.Generate()
	if a.NNZ() != b.NNZ() {
		t.Fatal("generation not deterministic")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] {
			t.Fatal("values not deterministic")
		}
	}
}

func TestRanksFor(t *testing.T) {
	if got := RanksFor(100, 16384, 2, 12); got != 2 {
		t.Fatalf("tiny matrix ranks = %d, want 2", got)
	}
	if got := RanksFor(1<<30, 16384, 2, 12); got != 12 {
		t.Fatalf("huge matrix ranks = %d, want 12", got)
	}
	if got := RanksFor(16384*5, 16384, 2, 12); got != 5 {
		t.Fatalf("ranks = %d, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("entriesPerRank 0 accepted")
		}
	}()
	RanksFor(1, 0, 1, 2)
}

func TestDefaultAndLargeRanksBounds(t *testing.T) {
	for _, s := range Table1() {
		_ = s
	}
	if DefaultRanks(1) < 2 || DefaultRanks(1<<40) > 12 {
		t.Fatal("DefaultRanks out of bounds")
	}
	if LargeRanks(1) < 8 || LargeRanks(1<<40) > 32 {
		t.Fatal("LargeRanks out of bounds")
	}
}

func TestQuickSet(t *testing.T) {
	qs := QuickSet()
	if len(qs) < 5 {
		t.Fatalf("quick set too small: %d", len(qs))
	}
	classes := map[string]bool{}
	for _, s := range qs {
		classes[s.Class] = true
	}
	if len(classes) < 5 {
		t.Fatalf("quick set covers only %d classes", len(classes))
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("ecology2-sim")
	if err != nil || s.ID != 20 {
		t.Fatalf("ByName failed: %v %v", s, err)
	}
	if _, err := ByName("Queen_4147-sim"); err != nil {
		t.Fatalf("Table 2 lookup failed: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

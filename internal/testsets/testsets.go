// Package testsets defines the evaluation matrix catalogs mirroring the
// paper's Table 1 (39 SPD SuiteSparse matrices) and Table 2 (8 large ones).
// Each catalog entry pairs the paper's matrix name and problem class with a
// deterministic synthetic generator of the same class, scaled down so the
// whole campaign runs on one machine (see DESIGN.md §1 for the substitution
// rationale). Rank counts follow the paper's §5.2 workload rule, scaled to
// the smaller instances.
package testsets

import (
	"fmt"

	"fsaicomm/internal/matgen"
	"fsaicomm/internal/sparse"
)

// Spec is one catalog entry.
type Spec struct {
	ID    int
	Name  string // paper matrix name with a -sim suffix
	Class string // paper "Type" column
	Gen   func() *sparse.CSR
}

// Generate builds the matrix (deterministic).
func (s Spec) Generate() *sparse.CSR { return s.Gen() }

// RanksFor applies the paper's §5.2 rule scaled down: one rank per
// entriesPerRank stored entries, at least minRanks, at most maxRanks.
func RanksFor(nnz int, entriesPerRank, minRanks, maxRanks int) int {
	if entriesPerRank <= 0 {
		panic(fmt.Sprintf("testsets: entriesPerRank %d", entriesPerRank))
	}
	r := nnz / entriesPerRank
	if r < minRanks {
		r = minRanks
	}
	if r > maxRanks {
		r = maxRanks
	}
	return r
}

// DefaultRanks applies the campaign's standard scaling: ~4k entries per
// simulated process, between 2 and 12 ranks (Table 1 set).
func DefaultRanks(nnz int) int { return RanksFor(nnz, 4096, 2, 12) }

// LargeRanks applies the large-set scaling: between 8 and 32 ranks
// (Table 2 set, the paper's up-to-32768-core runs).
func LargeRanks(nnz int) int { return RanksFor(nnz, 4096, 8, 32) }

// Table1 returns the 39-entry catalog mirroring the paper's Table 1. Order,
// names and problem classes match the paper row for row; sizes are scaled
// down ~50–500x.
func Table1() []Spec {
	return []Spec{
		{1, "PFlow_742-sim", "2D/3D Problem", func() *sparse.CSR { return matgen.Poisson3D(14, 14, 14) }},
		{2, "nd24k-sim", "2D/3D Problem", func() *sparse.CSR { return matgen.ModelReduction(1400, 28, 3, 102) }},
		{3, "Fault_639-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(30, 30, 103) }},
		{4, "msdoor-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(28, 28, 104) }},
		{5, "af_shell7-sim", "Subsequent Structural Problem", func() *sparse.CSR { return matgen.Shell2D(44, 44) }},
		{6, "af_shell8-sim", "Subsequent Structural Problem", func() *sparse.CSR { return matgen.Shell2D(44, 45) }},
		{7, "af_shell4-sim", "Subsequent Structural Problem", func() *sparse.CSR { return matgen.Shell2D(45, 44) }},
		{8, "af_shell3-sim", "Subsequent Structural Problem", func() *sparse.CSR { return matgen.Shell2D(45, 45) }},
		{9, "nd12k-sim", "2D/3D Problem", func() *sparse.CSR { return matgen.ModelReduction(1200, 26, 3, 109) }},
		{10, "crankseg_2-sim", "Structural Problem", func() *sparse.CSR { return matgen.ModelReduction(1300, 22, 2, 110) }},
		{11, "bmwcra_1-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(27, 27, 111) }},
		{12, "crankseg_1-sim", "Structural Problem", func() *sparse.CSR { return matgen.ModelReduction(1200, 20, 2, 112) }},
		{13, "hood-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(26, 26, 113) }},
		{14, "thermal2-sim", "Thermal Problem", func() *sparse.CSR { return matgen.ThermalAniso(60, 60, 40, 1) }},
		{15, "G3_circuit-sim", "Circuit Simulation Problem", func() *sparse.CSR { return matgen.CircuitLaplacian(3600, 4, 115) }},
		{16, "nd6k-sim", "2D/3D Problem", func() *sparse.CSR { return matgen.ModelReduction(1000, 24, 3, 116) }},
		{17, "consph-sim", "2D/3D Problem", func() *sparse.CSR { return matgen.ImbalancedMesh(48, 48, 0.25, 10, 117) }},
		{18, "boneS01-sim", "Model Reduction Problem", func() *sparse.CSR { return matgen.ModelReduction(1300, 16, 2, 118) }},
		{19, "tmt_sym-sim", "Electromagnetics Problem", func() *sparse.CSR { return matgen.ThermalAniso(56, 56, 12, 1) }},
		{20, "ecology2-sim", "2D/3D Problem", func() *sparse.CSR { return matgen.Poisson2D(62, 62) }},
		{21, "shipsec5-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(25, 25, 121) }},
		{22, "offshore-sim", "Electromagnetics Problem", func() *sparse.CSR { return matgen.Electromagnetics(2400, 3, 122) }},
		{23, "smt-sim", "Structural Problem", func() *sparse.CSR { return matgen.ModelReduction(900, 24, 3, 123) }},
		{24, "parabolic_fem-sim", "Computational Fluid Dynamics Problem", func() *sparse.CSR { return matgen.CFDDiffusion(56, 56, 100, 124) }},
		{25, "Dubcova3-sim", "2D/3D Problem", func() *sparse.CSR { return matgen.Poisson2D(54, 54) }},
		{26, "shipsec1-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(23, 23, 126) }},
		{27, "nd3k-sim", "2D/3D Problem", func() *sparse.CSR { return matgen.ModelReduction(800, 22, 3, 127) }},
		{28, "cfd2-sim", "Computational Fluid Dynamics Problem", func() *sparse.CSR { return matgen.CFDDiffusion(50, 50, 500, 128) }},
		{29, "nasasrb-sim", "Structural Problem", func() *sparse.CSR { return matgen.Shell2D(38, 38) }},
		{30, "oilpan-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(22, 22, 130) }},
		{31, "cfd1-sim", "Computational Fluid Dynamics Problem", func() *sparse.CSR { return matgen.CFDDiffusion(42, 42, 300, 131) }},
		{32, "qa8fm-sim", "Acoustics Problem", func() *sparse.CSR { return matgen.Acoustics(40, 40, 4) }},
		{33, "2cubes_sphere-sim", "Electromagnetics Problem", func() *sparse.CSR { return matgen.Electromagnetics(1700, 3, 133) }},
		{34, "thermomech_dM-sim", "Thermal Problem", func() *sparse.CSR { return matgen.DiagShift(matgen.ThermalAniso(44, 44, 1.2, 1), 12) }},
		{35, "msc10848-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(20, 20, 135) }},
		{36, "Dubcova2-sim", "2D/3D Problem", func() *sparse.CSR { return matgen.Poisson2D(44, 44) }},
		{37, "gyro_k-sim", "Duplicate Model Reduction Problem", func() *sparse.CSR { return matgen.ModelReduction(700, 18, 1, 137) }},
		{38, "gyro-sim", "Model Reduction Problem", func() *sparse.CSR { return matgen.ModelReduction(700, 18, 1, 138) }},
		{39, "olafu-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(19, 19, 139) }},
	}
}

// Table2 returns the 8-entry large catalog mirroring the paper's Table 2.
// Entry 1 appears twice in the paper (256 and 128 nodes); the driver handles
// the duplicate rank count, so it is listed once here.
func Table2() []Spec {
	return []Spec{
		{1, "Queen_4147-sim", "2D/3D Problem", func() *sparse.CSR { return matgen.Poisson3D(24, 24, 24) }},
		{2, "Bump_2911-sim", "2D/3D Problem", func() *sparse.CSR { return matgen.Poisson3D(22, 22, 22) }},
		{3, "Flan_1565-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(60, 60, 203) }},
		{4, "audikw_1-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(56, 56, 204) }},
		{5, "Geo_1438-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(52, 52, 205) }},
		{6, "Hook_1498-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(48, 48, 206) }},
		{7, "bone010-sim", "Model Reduction Problem", func() *sparse.CSR { return matgen.ModelReduction(5000, 18, 2, 207) }},
		{8, "ldoor-sim", "Structural Problem", func() *sparse.CSR { return matgen.Elasticity2D(44, 44, 208) }},
	}
}

// QuickSet returns a small representative subset of Table 1 used by the
// bench harness's default mode (one matrix per problem class; the full
// campaign runs via cmd/fsaibench).
func QuickSet() []Spec {
	t1 := Table1()
	pick := []int{1, 3, 8, 14, 15, 24, 32} // 3D Poisson, elasticity, shell, thermal, circuit, CFD, acoustics
	out := make([]Spec, 0, len(pick))
	for _, id := range pick {
		out = append(out, t1[id-1])
	}
	return out
}

// Nonsym returns the nonsymmetric catalog driving the SPAI+GMRES axis.
// There is no paper table to mirror here (the paper's campaign is SPD-only);
// the classes cover the two standard nonsymmetric stress shapes: upwind
// convection–diffusion at moderate and solver-breaking Péclet numbers, and
// an unstructured circuit-like operator.
func Nonsym() []Spec {
	return []Spec{
		{1, "convdiff-sim", "Convection Diffusion Problem", func() *sparse.CSR { return matgen.ConvectionDiffusion2D(40, 40, 5) }},
		{2, "convdiff-skew-sim", "Convection Diffusion Problem", func() *sparse.CSR { return matgen.ConvectionDiffusion2D(36, 36, 50) }},
		{3, "nonsym-circuit-sim", "Circuit Simulation Problem", func() *sparse.CSR { return matgen.NonsymCircuit(1400, 5, 301) }},
	}
}

// ByName finds a spec by its catalog name in any table (the SPD Table 1 and
// Table 2 catalogs, then the nonsymmetric set).
func ByName(name string) (Spec, error) {
	for _, table := range [][]Spec{Table1(), Table2(), Nonsym()} {
		for _, s := range table {
			if s.Name == name {
				return s, nil
			}
		}
	}
	return Spec{}, fmt.Errorf("testsets: unknown matrix %q", name)
}

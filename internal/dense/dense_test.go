package dense

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD builds a random SPD matrix as B·Bᵀ + n·I, row-major.
func randSPD(rng *rand.Rand, n int) []float64 {
	b := make([]float64, n*n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b[i*n+k] * b[j*n+k]
			}
			a[i*n+j] = s
		}
		a[i*n+i] += float64(n)
	}
	return a
}

func TestCholeskySolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(30)
		a := randSPD(rng, n)
		orig := append([]float64(nil), a...)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		MulSym(orig, n, x, b)
		if err := SolveSPD(a, n, b); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, b[i], x[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := []float64{1, 0, 0, -1} // diag(1, -1)
	err := Cholesky(a, 2)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyRejectsShortBuffer(t *testing.T) {
	if err := Cholesky(make([]float64, 3), 2); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestCholeskyFactorReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 8
	a := randSPD(rng, n)
	orig := append([]float64(nil), a...)
	if err := Cholesky(a, n); err != nil {
		t.Fatal(err)
	}
	// L·Lᵀ should equal the original lower triangle.
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += a[i*n+k] * a[j*n+k]
			}
			if math.Abs(s-orig[i*n+j]) > 1e-9*(1+math.Abs(orig[i*n+j])) {
				t.Fatalf("LLᵀ(%d,%d) = %v, want %v", i, j, s, orig[i*n+j])
			}
		}
	}
}

func TestLDLTSolveIndefinite(t *testing.T) {
	// Symmetric indefinite matrix with nonzero pivots.
	a := []float64{
		2, 1, 0,
		1, -3, 1,
		0, 1, 1,
	}
	orig := append([]float64(nil), a...)
	x := []float64{1, -2, 0.5}
	b := make([]float64, 3)
	MulSym(orig, 3, x, b)
	if err := LDLT(a, 3); err != nil {
		t.Fatal(err)
	}
	SolveLDLT(a, 3, b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", i, b[i], x[i])
		}
	}
}

func TestLDLTZeroPivot(t *testing.T) {
	a := []float64{0, 0, 0, 1}
	if err := LDLT(a, 2); err == nil {
		t.Fatal("zero pivot accepted")
	}
}

func TestSolveN1(t *testing.T) {
	a := []float64{4}
	b := []float64{8}
	if err := SolveSPD(a, 1, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 2 {
		t.Fatalf("x = %v, want 2", b[0])
	}
}

// Property: Cholesky and LDLT agree on SPD systems.
func TestQuickCholLDLTAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randSPD(rng, n)
		a2 := append([]float64(nil), a...)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		b2 := append([]float64(nil), b...)
		if err := SolveSPD(a, n, b); err != nil {
			return false
		}
		if err := LDLT(a2, n); err != nil {
			return false
		}
		SolveLDLT(a2, n, b2)
		for i := range b {
			if math.Abs(b[i]-b2[i]) > 1e-7*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

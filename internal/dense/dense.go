// Package dense provides the small dense linear-algebra kernels the FSAI
// setup needs: Cholesky and LDLᵀ factorizations of symmetric positive
// definite matrices and the associated triangular solves. It replaces the
// MKL/OpenBLAS dependency of the paper's implementation; the systems it
// solves are the per-row restrictions A(S_i, S_i), which are tiny (typically
// a few dozen unknowns).
//
// Matrices are stored row-major in flat []float64 buffers of size n*n.
package dense

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a factorization encounters a
// non-positive pivot. Principal submatrices of an SPD matrix are SPD, so for
// valid FSAI inputs this indicates a non-SPD system matrix.
var ErrNotPositiveDefinite = errors.New("dense: matrix is not positive definite")

// Cholesky overwrites the lower triangle of a (row-major n×n, symmetric
// positive definite; only the lower triangle is read) with its Cholesky
// factor L such that L·Lᵀ equals the input. The strict upper triangle is
// left untouched.
func Cholesky(a []float64, n int) error {
	if len(a) < n*n {
		return fmt.Errorf("dense: Cholesky buffer %d too small for n=%d", len(a), n)
	}
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, j, d)
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = s * inv
		}
	}
	return nil
}

// SolveChol solves (L·Lᵀ) x = b in place on b, where the lower triangle of a
// holds a Cholesky factor produced by Cholesky.
func SolveChol(a []float64, n int, b []float64) {
	// Forward substitution L y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i*n+k] * b[k]
		}
		b[i] = s / a[i*n+i]
	}
	// Back substitution Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[k*n+i] * b[k]
		}
		b[i] = s / a[i*n+i]
	}
}

// SolveSPD solves A x = b for a symmetric positive definite A (row-major,
// only the lower triangle is read). A and b are overwritten; on return b
// holds the solution.
func SolveSPD(a []float64, n int, b []float64) error {
	if err := Cholesky(a, n); err != nil {
		return err
	}
	SolveChol(a, n, b)
	return nil
}

// LDLT overwrites a (row-major n×n, symmetric; lower triangle read) with the
// LDLᵀ factorization: the strictly-lower part holds L (unit diagonal
// implied) and the diagonal holds D. Unlike Cholesky it tolerates negative
// pivots, failing only on (near-)zero ones.
func LDLT(a []float64, n int) error {
	if len(a) < n*n {
		return fmt.Errorf("dense: LDLT buffer %d too small for n=%d", len(a), n)
	}
	v := make([]float64, n)
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			v[k] = a[j*n+k] * a[k*n+k]
		}
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * v[k]
		}
		if d == 0 || math.IsNaN(d) {
			return fmt.Errorf("dense: LDLT zero pivot at %d", j)
		}
		a[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * v[k]
			}
			a[i*n+j] = s / d
		}
	}
	return nil
}

// SolveLDLT solves (L·D·Lᵀ) x = b in place on b using a factor from LDLT.
func SolveLDLT(a []float64, n int, b []float64) {
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i*n+k] * b[k]
		}
		b[i] = s
	}
	for i := 0; i < n; i++ {
		b[i] /= a[i*n+i]
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[k*n+i] * b[k]
		}
		b[i] = s
	}
}

// MulSym computes y = A x for a symmetric A stored row-major (lower triangle
// read). Used by tests to verify solves.
func MulSym(a []float64, n int, x, y []float64) {
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j <= i; j++ {
			s += a[i*n+j] * x[j]
		}
		for j := i + 1; j < n; j++ {
			s += a[j*n+i] * x[j]
		}
		y[i] = s
	}
}

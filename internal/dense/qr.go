package dense

import (
	"errors"
	"fmt"
	"math"
)

// ErrRankDeficient is returned when a least-squares system has (numerically)
// linearly dependent columns, so the minimizer is not unique. The SPAI
// per-column problems hit this only on structurally defective matrices (a
// zero column of A inside the pattern).
var ErrRankDeficient = errors.New("dense: least-squares matrix is rank deficient")

// QRLeastSquares solves the dense least-squares problem min‖A·x − b‖₂ by
// Householder QR without pivoting. A is row-major m×n with m ≥ n ≥ 1 and is
// overwritten with the factorization; b (length m) is overwritten with Qᵀb,
// whose trailing m−n entries then hold the residual in the rotated basis.
// The solution is written to x (length n). Rank deficiency — a zero or
// numerically negligible R diagonal — returns ErrRankDeficient.
func QRLeastSquares(a []float64, m, n int, b, x []float64) error {
	if n < 1 || m < n {
		return fmt.Errorf("dense: QRLeastSquares shape %dx%d, want m >= n >= 1", m, n)
	}
	if len(a) < m*n || len(b) < m || len(x) < n {
		return fmt.Errorf("dense: QRLeastSquares buffers %d/%d/%d too small for %dx%d", len(a), len(b), len(x), m, n)
	}
	// maxDiag anchors the relative rank test: a pivot tiny against the
	// largest one means a (numerically) dependent column.
	maxDiag := 0.0
	for k := 0; k < n; k++ {
		// Householder vector for column k: v = a[k:m,k] with v[0] adjusted so
		// H·a[k:m,k] = (alpha, 0, ..., 0). Scale by the column max first so
		// the norm cannot overflow.
		scale := 0.0
		for i := k; i < m; i++ {
			if av := math.Abs(a[i*n+k]); av > scale {
				scale = av
			}
		}
		if scale == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
			return fmt.Errorf("%w (column %d)", ErrRankDeficient, k)
		}
		var ssq float64
		for i := k; i < m; i++ {
			a[i*n+k] /= scale
			ssq += a[i*n+k] * a[i*n+k]
		}
		alpha := math.Sqrt(ssq)
		if a[k*n+k] > 0 {
			alpha = -alpha
		}
		// v = column with v[0] = a_kk − alpha, stored in place below the
		// diagonal. H = I − 2vvᵀ/vᵀv is invariant under the column scaling.
		a[k*n+k] -= alpha
		var vtv float64
		for i := k; i < m; i++ {
			vtv += a[i*n+k] * a[i*n+k]
		}
		if vtv == 0 {
			return fmt.Errorf("%w (column %d)", ErrRankDeficient, k)
		}
		// Apply H = I − 2vvᵀ/vᵀv to the trailing columns and to b.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += a[i*n+k] * a[i*n+j]
			}
			s *= 2 / vtv
			for i := k; i < m; i++ {
				a[i*n+j] -= s * a[i*n+k]
			}
		}
		var s float64
		for i := k; i < m; i++ {
			s += a[i*n+k] * b[i]
		}
		s *= 2 / vtv
		for i := k; i < m; i++ {
			b[i] -= s * a[i*n+k]
		}
		// Store the diagonal of R (undoing the column scaling) and track the
		// largest pivot for the rank test.
		r := alpha * scale
		a[k*n+k] = r
		if ar := math.Abs(r); ar > maxDiag {
			maxDiag = ar
		}
		if math.Abs(r) <= 1e-13*maxDiag || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("%w (pivot %d = %g)", ErrRankDeficient, k, r)
		}
	}
	// Back substitution R·x = b[0:n]. R's strict upper part sits in a's upper
	// triangle (unscaled); the diagonal was restored above.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * x[j]
		}
		x[i] = s / a[i*n+i]
	}
	for i := range x[:n] {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			return fmt.Errorf("%w (solution not finite)", ErrRankDeficient)
		}
	}
	return nil
}

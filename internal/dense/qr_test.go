package dense

import (
	"math"
	"math/rand"
	"testing"
)

// mulDense computes y = A·x for a row-major m×n A.
func mulDense(a []float64, m, n int, x, y []float64) {
	for i := 0; i < m; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		y[i] = s
	}
}

// mulDenseT computes y = Aᵀ·x for a row-major m×n A.
func mulDenseT(a []float64, m, n int, x, y []float64) {
	for j := 0; j < n; j++ {
		y[j] = 0
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			y[j] += a[i*n+j] * x[i]
		}
	}
}

func TestQRLeastSquaresSquareExact(t *testing.T) {
	// A well-conditioned square system: the LS solution is the exact solve.
	a := []float64{4, 1, 0, 1, 5, 2, 0, 2, 6}
	want := []float64{1, -2, 3}
	b := make([]float64, 3)
	mulDense(a, 3, 3, want, b)
	ac := append([]float64(nil), a...)
	x := make([]float64, 3)
	if err := QRLeastSquares(ac, 3, 3, b, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Random overdetermined systems: verify the normal equations Aᵀ(Ax−b)=0
	// hold to rounding, which characterizes the least-squares minimizer.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(20)
		n := 1 + rng.Intn(m)
		a := make([]float64, m*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ac := append([]float64(nil), a...)
		bc := append([]float64(nil), b...)
		x := make([]float64, n)
		if err := QRLeastSquares(ac, m, n, bc, x); err != nil {
			// Random Gaussian matrices are almost surely full rank; a rank
			// failure here would be a kernel bug.
			t.Fatalf("trial %d (%dx%d): %v", trial, m, n, err)
		}
		r := make([]float64, m)
		mulDense(a, m, n, x, r)
		scale := 0.0
		for i := range r {
			r[i] -= b[i]
			if av := math.Abs(b[i]); av > scale {
				scale = av
			}
		}
		g := make([]float64, n)
		mulDenseT(a, m, n, r, g)
		for j := range g {
			if math.Abs(g[j]) > 1e-9*(1+scale)*float64(m) {
				t.Fatalf("trial %d (%dx%d): normal-equation residual %g at %d", trial, m, n, g[j], j)
			}
		}
	}
}

func TestQRLeastSquaresRankDeficient(t *testing.T) {
	// Two identical columns: the minimizer is not unique.
	a := []float64{1, 1, 2, 2, 3, 3}
	b := []float64{1, 2, 3}
	x := make([]float64, 2)
	if err := QRLeastSquares(a, 3, 2, b, x); err == nil {
		t.Fatal("expected ErrRankDeficient for dependent columns")
	}
	// A zero column.
	a = []float64{0, 1, 0, 2, 0, 3}
	if err := QRLeastSquares(a, 3, 2, b, x); err == nil {
		t.Fatal("expected ErrRankDeficient for zero column")
	}
}

func TestQRLeastSquaresBadShape(t *testing.T) {
	x := make([]float64, 2)
	if err := QRLeastSquares(make([]float64, 2), 1, 2, make([]float64, 1), x); err == nil {
		t.Fatal("expected shape error for m < n")
	}
	if err := QRLeastSquares(nil, 0, 0, nil, nil); err == nil {
		t.Fatal("expected shape error for n = 0")
	}
}

// FuzzQRLeastSquares drives the kernel with arbitrary small systems and
// checks that any solution it accepts satisfies the normal equations; inputs
// it rejects (rank deficient, non-finite) must come back as errors, never
// panics or silent garbage.
func FuzzQRLeastSquares(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3))
	f.Add(int64(2), uint8(8), uint8(1))
	f.Add(int64(3), uint8(12), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, mraw, nraw uint8) {
		m := 1 + int(mraw)%16
		n := 1 + int(nraw)%16
		if m < n {
			m, n = n, m
		}
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, m*n)
		for i := range a {
			// Mix magnitudes and exact zeros so near-rank-deficiency shows up.
			switch rng.Intn(4) {
			case 0:
				a[i] = 0
			case 1:
				a[i] = rng.NormFloat64() * 1e-8
			default:
				a[i] = rng.NormFloat64()
			}
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ac := append([]float64(nil), a...)
		bc := append([]float64(nil), b...)
		x := make([]float64, n)
		if err := QRLeastSquares(ac, m, n, bc, x); err != nil {
			return // rejected input; the contract only covers accepted ones
		}
		r := make([]float64, m)
		mulDense(a, m, n, x, r)
		scale := 1.0
		for i := range r {
			r[i] -= b[i]
			if av := math.Abs(b[i]); av > scale {
				scale = av
			}
		}
		xmax := 0.0
		for _, v := range x {
			if av := math.Abs(v); av > xmax {
				xmax = av
			}
		}
		// Accepted solutions on (possibly ill-conditioned) inputs: bound the
		// normal-equation residual relative to the solution magnitude the
		// kernel chose — a loose bound that still catches wrong arithmetic.
		g := make([]float64, n)
		mulDenseT(a, m, n, r, g)
		for j := range g {
			if math.Abs(g[j]) > 1e-6*(scale+xmax+1)*float64(m) {
				t.Fatalf("normal-equation residual %g at %d (m=%d n=%d)", g[j], j, m, n)
			}
		}
	})
}

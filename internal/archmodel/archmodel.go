// Package archmodel describes the three evaluation architectures of the
// paper (Intel Skylake, Fujitsu A64FX, AMD Zen 2) as parameter profiles and
// provides the per-iteration cost model that stands in for wall-clock time
// in the reproduced tables.
//
// The paper's method consumes exactly one architectural parameter — the
// cache-line size (64 B on Skylake and Zen 2, 256 B on A64FX) — which is why
// A64FX shows the largest gains. The rest of the profile (L1 geometry, flop
// rate, interconnect α/β) feeds a max-over-ranks time model:
//
//	iterTime = max over ranks of ( flops/rate + misses·missPenalty
//	                               + msgs·α + bytes·β )
//	solveTime = iterations · iterTime
//
// Counted flops come from the solver's FlopCounter, misses from the
// deterministic cache simulator, and bytes/messages from the metered
// runtime, so the model is exactly reproducible. Absolute times are not
// meant to match the paper's hardware; relative comparisons between methods
// (the content of every table) are.
package archmodel

import (
	"fmt"

	"fsaicomm/internal/cache"
)

// Profile is one target architecture.
type Profile struct {
	Name string
	// LineBytes is the cache-line size, the parameter the pattern
	// extension algorithm keys on.
	LineBytes int
	// L1Bytes and L1Ways give the per-core L1 data cache geometry.
	L1Bytes, L1Ways int
	// FlopsPerSec is the effective per-core rate for memory-bound sparse
	// kernels (not peak).
	FlopsPerSec float64
	// MemBWPerCore is the effective per-core memory bandwidth (bytes/s)
	// charged for streaming the matrix entries and vectors — the dominant
	// cost of SpMV. More stored entries cost real time through this term,
	// which is what makes load imbalance matter (§5.3.3).
	MemBWPerCore float64
	// MissPenaltySec is the added latency charged per simulated L1 miss.
	MissPenaltySec float64
	// AlphaSec and BetaSecPerByte are the INTER-NODE interconnect
	// latency/bandwidth cost parameters — the network crossing between
	// compute nodes. They price RankCost.CommMsgs/CommBytes, which under a
	// flat topology is all point-to-point traffic (the historical meaning).
	AlphaSec       float64
	BetaSecPerByte float64
	// IntraAlphaSec and IntraBetaSecPerByte price INTRA-NODE messages —
	// ranks sharing a node exchange through shared memory, which is an
	// order of magnitude cheaper in latency and several in bandwidth than
	// the network (the asymmetry the Bienz–Gropp–Olson node-aware exchange
	// exploits). They apply to RankCost.IntraCommMsgs/IntraCommBytes, which
	// are zero under a flat topology, leaving every historical model output
	// bit-identical.
	IntraAlphaSec       float64
	IntraBetaSecPerByte float64
	// CoresPerProcess is the default hybrid configuration (the paper uses
	// 8 threads per MPI process in the main campaign).
	CoresPerProcess int
}

// The three evaluation systems of §5.1. Rates are effective sparse-kernel
// figures, not peaks; they only scale the model's time unit.
var (
	Skylake = Profile{
		Name:                "skylake",
		LineBytes:           64,
		L1Bytes:             32 * 1024,
		L1Ways:              8,
		FlopsPerSec:         4.0e9,
		MemBWPerCore:        5.0e9,
		MissPenaltySec:      5.0e-9,
		AlphaSec:            1.5e-6,
		BetaSecPerByte:      8.0e-11,
		IntraAlphaSec:       3.0e-7,
		IntraBetaSecPerByte: 1.0e-11,
		CoresPerProcess:     8,
	}
	A64FX = Profile{
		Name:                "a64fx",
		LineBytes:           256,
		L1Bytes:             64 * 1024,
		L1Ways:              4,
		FlopsPerSec:         5.0e9,
		MemBWPerCore:        18.0e9,
		MissPenaltySec:      8.0e-9,
		AlphaSec:            1.0e-6,
		BetaSecPerByte:      4.0e-11,
		IntraAlphaSec:       2.0e-7,
		IntraBetaSecPerByte: 5.0e-12,
		CoresPerProcess:     12,
	}
	Zen2 = Profile{
		Name:                "zen2",
		LineBytes:           64,
		L1Bytes:             32 * 1024,
		L1Ways:              8,
		FlopsPerSec:         4.5e9,
		MemBWPerCore:        3.5e9,
		MissPenaltySec:      4.5e-9,
		AlphaSec:            1.3e-6,
		BetaSecPerByte:      5.0e-11,
		IntraAlphaSec:       2.5e-7,
		IntraBetaSecPerByte: 8.0e-12,
		CoresPerProcess:     8,
	}
)

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	switch name {
	case "skylake":
		return Skylake, nil
	case "a64fx":
		return A64FX, nil
	case "zen2":
		return Zen2, nil
	default:
		return Profile{}, fmt.Errorf("archmodel: unknown architecture %q (want skylake, a64fx or zen2)", name)
	}
}

// WithCoresPerProcess returns a copy of the profile with the hybrid
// configuration changed (Table 4 sweeps 1/2/4/8/48 cores per process).
func (p Profile) WithCoresPerProcess(cores int) Profile {
	if cores < 1 {
		panic(fmt.Sprintf("archmodel: cores per process %d < 1", cores))
	}
	p.CoresPerProcess = cores
	return p
}

// NewProcessCache builds the cache simulator for one simulated process: the
// aggregate L1 capacity of its cores (more threads per process leave more
// cache for the process's working set — the effect Table 4 measures).
func (p Profile) NewProcessCache() *cache.Cache {
	capacity := p.L1Bytes * p.CoresPerProcess
	// Keep set count a power of two: scale capacity to the next power-of-two
	// multiple of line*ways if needed.
	lw := p.LineBytes * p.L1Ways
	sets := capacity / lw
	pow := 1
	for pow*2 <= sets {
		pow *= 2
	}
	return cache.MustNew(pow*lw, p.LineBytes, p.L1Ways)
}

// RankCost aggregates one rank's per-iteration work. CommBytes/CommMsgs is
// inter-node (network) traffic; IntraCommBytes/IntraCommMsgs is same-node
// (shared-memory) traffic, zero whenever no two-level topology is in play.
type RankCost struct {
	Flops          int64
	StreamBytes    int64 // matrix + vector bytes streamed from memory
	CacheMisses    int64
	CommBytes      int64
	CommMsgs       int64
	IntraCommBytes int64
	IntraCommMsgs  int64
}

// Add accumulates another cost into this one.
func (r *RankCost) Add(o RankCost) {
	r.Flops += o.Flops
	r.StreamBytes += o.StreamBytes
	r.CacheMisses += o.CacheMisses
	r.CommBytes += o.CommBytes
	r.CommMsgs += o.CommMsgs
	r.IntraCommBytes += o.IntraCommBytes
	r.IntraCommMsgs += o.IntraCommMsgs
}

// ComputeTime returns only the on-node terms of the model: flop rate,
// memory streaming and cache-miss latency. The process runs CoresPerProcess
// cores, so the flop and stream terms are divided by the aggregate rate;
// miss latency is serialized per process.
func (p Profile) ComputeTime(rc RankCost) float64 {
	cores := float64(p.CoresPerProcess)
	return float64(rc.Flops)/(p.FlopsPerSec*cores) +
		float64(rc.StreamBytes)/(p.MemBWPerCore*cores) +
		float64(rc.CacheMisses)*p.MissPenaltySec
}

// CommTime returns only the interconnect terms of the model, the
// hierarchical α–β cost pricing each level with its own parameters:
//
//	α·msgs + β·bytes + α_intra·intraMsgs + β_intra·intraBytes
//
// With no intra-node traffic (every flat-topology cost) this is exactly the
// historical single-level α–β cost.
func (p Profile) CommTime(rc RankCost) float64 {
	t := float64(rc.CommMsgs)*p.AlphaSec + float64(rc.CommBytes)*p.BetaSecPerByte
	if rc.IntraCommMsgs != 0 || rc.IntraCommBytes != 0 {
		t += float64(rc.IntraCommMsgs)*p.IntraAlphaSec + float64(rc.IntraCommBytes)*p.IntraBetaSecPerByte
	}
	return t
}

// Time converts a rank cost into modeled seconds with communication fully
// exposed (no overlap credit): ComputeTime + CommTime.
func (p Profile) Time(rc RankCost) float64 {
	return p.ComputeTime(rc) + p.CommTime(rc)
}

// CommWindow is one communication phase of an iteration paired with the
// compute the schedule runs while that traffic is in flight. The α–β cost
// of the phase is charged only to the extent it exceeds the hiding compute:
//
//	exposed(window) = max(0, CommTime(Comm) − ComputeTime(Hide))
//
// Hide must be a portion of the iteration's total compute, and the Hide
// windows of one OverlapCost must be disjoint portions — each flop can hide
// at most one phase. The builders in internal/experiments carve the
// iteration's compute accordingly (interior SpMV rows hide the halo
// exchange; the preconditioner application hides the pipelined reduction).
type CommWindow struct {
	// Name labels the phase in reports ("halo", "reduction").
	Name string
	// Comm carries the phase's interconnect traffic (CommMsgs/CommBytes);
	// compute fields are ignored.
	Comm RankCost
	// Hide carries the compute available during the phase (Flops,
	// StreamBytes, CacheMisses); comm fields are ignored.
	Hide RankCost
}

// OverlapCost is one rank's per-iteration cost split the way an overlapping
// schedule executes it: all compute, communication that no schedule can
// hide, and the hideable communication phases with their hiding windows.
type OverlapCost struct {
	// Compute is the iteration's total on-node work (the Hide windows are
	// portions of it, not additions).
	Compute RankCost
	// Exposed is communication serialized against everything (e.g. the
	// blocking reductions of the classic and fused loops).
	Exposed RankCost
	// Windows are the overlappable communication phases.
	Windows []CommWindow
}

// OverlapTime models one iteration of an overlapping schedule:
//
//	time = compute + exposed + Σ max(0, comm(w) − compute(w.Hide))
//
// The simulated runtime serializes goroutines and therefore cannot exhibit
// overlap in wall-clock terms; this credit term is how the metered traffic
// becomes the time a real network would see (DESIGN.md §4d).
func (p Profile) OverlapTime(oc OverlapCost) float64 {
	t := p.ComputeTime(oc.Compute) + p.CommTime(oc.Exposed)
	for _, w := range oc.Windows {
		if ex := p.CommTime(w.Comm) - p.ComputeTime(w.Hide); ex > 0 {
			t += ex
		}
	}
	return t
}

// WindowReport is one communication window's share of an iteration's
// modeled time: the raw α–β cost of its traffic, the compute available to
// hide it, the credit actually taken, and the exposed remainder. Hidden is
// defined as Raw − Exposed, so the split is exact by construction.
type WindowReport struct {
	Name       string  `json:"window"`
	RawSec     float64 `json:"raw_s"`        // α–β time of the window's traffic
	HideAvail  float64 `json:"hide_avail_s"` // compute time available to hide it
	HiddenSec  float64 `json:"hidden_s"`     // min(raw, available) — the credit
	ExposedSec float64 `json:"exposed_s"`    // raw − hidden, charged to the iteration
}

// OverlapReport is the per-window breakdown of OverlapTime for one rank's
// iteration cost. TotalSec is accumulated with the identical operation
// order as OverlapTime, so the two are bit-for-bit equal — the breakdown
// reconciles exactly with the scalar modeled time it explains.
type OverlapReport struct {
	ComputeSec float64        `json:"compute_s"`      // on-node work
	ExposedSec float64        `json:"exposed_comm_s"` // unwindowed (always-exposed) comm
	Windows    []WindowReport `json:"windows"`
	TotalSec   float64        `json:"total_s"` // == OverlapTime(oc)
}

// OverlapReport decomposes OverlapTime(oc) into its per-window terms.
func (p Profile) OverlapReport(oc OverlapCost) OverlapReport {
	rep := OverlapReport{
		ComputeSec: p.ComputeTime(oc.Compute),
		ExposedSec: p.CommTime(oc.Exposed),
		Windows:    make([]WindowReport, 0, len(oc.Windows)),
	}
	// Accumulate exactly as OverlapTime does (same subexpressions, same
	// order) so TotalSec matches it bit-for-bit.
	t := p.ComputeTime(oc.Compute) + p.CommTime(oc.Exposed)
	for _, w := range oc.Windows {
		wr := WindowReport{
			Name:      w.Name,
			RawSec:    p.CommTime(w.Comm),
			HideAvail: p.ComputeTime(w.Hide),
		}
		if ex := p.CommTime(w.Comm) - p.ComputeTime(w.Hide); ex > 0 {
			wr.ExposedSec = ex
			t += ex
		}
		wr.HiddenSec = wr.RawSec - wr.ExposedSec
		rep.Windows = append(rep.Windows, wr)
	}
	rep.TotalSec = t
	return rep
}

// Scale returns the report with every time multiplied by f — e.g. the
// iteration count, turning a per-iteration breakdown into a per-solve one.
func (r OverlapReport) Scale(f float64) OverlapReport {
	out := r
	out.ComputeSec *= f
	out.ExposedSec *= f
	out.TotalSec *= f
	out.Windows = make([]WindowReport, len(r.Windows))
	for i, w := range r.Windows {
		w.RawSec *= f
		w.HideAvail *= f
		w.HiddenSec *= f
		w.ExposedSec *= f
		out.Windows[i] = w
	}
	return out
}

// SolveTime returns the modeled time of a solve: iterations times the
// slowest rank's per-iteration time (ranks synchronize at the dot products
// every iteration, so the maximum governs).
func (p Profile) SolveTime(iters int, perRank []RankCost) float64 {
	worst := 0.0
	for _, rc := range perRank {
		if t := p.Time(rc); t > worst {
			worst = t
		}
	}
	return float64(iters) * worst
}

// SolveTimeOverlapped returns the modeled time of a solve under an
// overlapping schedule: iterations times the slowest rank's OverlapTime
// (the reduction still synchronizes ranks once per iteration, so the
// maximum governs).
func (p Profile) SolveTimeOverlapped(iters int, perRank []OverlapCost) float64 {
	worst := 0.0
	for _, oc := range perRank {
		if t := p.OverlapTime(oc); t > worst {
			worst = t
		}
	}
	return float64(iters) * worst
}

// GFlopsPerProcess returns the modeled GFLOP/s a process achieves on work
// rc (used for the preconditioning-product histograms, Figures 3b/5b/7).
func (p Profile) GFlopsPerProcess(rc RankCost) float64 {
	t := p.Time(rc)
	if t == 0 {
		return 0
	}
	return float64(rc.Flops) / t / 1e9
}

package archmodel

import (
	"testing"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"skylake", "a64fx", "zen2"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Fatalf("profile name %q, want %q", p.Name, name)
		}
	}
	if _, err := ByName("m1"); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestLineSizesMatchPaper(t *testing.T) {
	if Skylake.LineBytes != 64 || Zen2.LineBytes != 64 {
		t.Fatal("Skylake/Zen2 must have 64B lines")
	}
	if A64FX.LineBytes != 256 {
		t.Fatal("A64FX must have 256B lines")
	}
}

func TestProcessCacheGeometry(t *testing.T) {
	for _, p := range []Profile{Skylake, A64FX, Zen2} {
		c := p.NewProcessCache()
		if c.LineBytes() != p.LineBytes {
			t.Fatalf("%s: cache line %d, want %d", p.Name, c.LineBytes(), p.LineBytes)
		}
	}
	// Odd core counts still produce a valid power-of-two geometry.
	c := Skylake.WithCoresPerProcess(3).NewProcessCache()
	if c == nil {
		t.Fatal("nil cache")
	}
}

func TestWithCoresPerProcess(t *testing.T) {
	p := Skylake.WithCoresPerProcess(48)
	if p.CoresPerProcess != 48 || Skylake.CoresPerProcess == 48 {
		t.Fatal("WithCoresPerProcess mutated original or failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cores=0 accepted")
		}
	}()
	Skylake.WithCoresPerProcess(0)
}

func TestTimeMonotone(t *testing.T) {
	base := RankCost{Flops: 1e6, CacheMisses: 1e3, CommBytes: 1e4, CommMsgs: 10}
	t0 := Skylake.Time(base)
	for _, delta := range []RankCost{
		{Flops: 1e6}, {CacheMisses: 1e3}, {CommBytes: 1e5}, {CommMsgs: 100},
	} {
		more := base
		more.Add(delta)
		if Skylake.Time(more) <= t0 {
			t.Fatalf("cost not monotone in %+v", delta)
		}
	}
}

func TestMoreCoresFasterFlops(t *testing.T) {
	rc := RankCost{Flops: 1e9}
	t1 := Skylake.WithCoresPerProcess(1).Time(rc)
	t8 := Skylake.WithCoresPerProcess(8).Time(rc)
	if t8 >= t1 {
		t.Fatalf("8 cores (%g) not faster than 1 (%g)", t8, t1)
	}
}

func TestSolveTimeUsesWorstRank(t *testing.T) {
	costs := []RankCost{{Flops: 1e6}, {Flops: 5e6}, {Flops: 2e6}}
	got := Skylake.SolveTime(10, costs)
	want := 10 * Skylake.Time(costs[1])
	if got != want {
		t.Fatalf("SolveTime = %g, want %g", got, want)
	}
	if Skylake.SolveTime(10, nil) != 0 {
		t.Fatal("empty ranks should cost 0")
	}
}

func TestGFlopsPerProcess(t *testing.T) {
	rc := RankCost{Flops: 4e9} // exactly one second at 4 GF/s with 1 core
	p := Skylake.WithCoresPerProcess(1)
	if g := p.GFlopsPerProcess(rc); g != 4 {
		t.Fatalf("GFlops = %v, want 4", g)
	}
	// Misses reduce achieved GFLOP/s.
	rc2 := rc
	rc2.CacheMisses = 1e8
	if p.GFlopsPerProcess(rc2) >= 4 {
		t.Fatal("misses did not reduce achieved rate")
	}
	if p.GFlopsPerProcess(RankCost{}) != 0 {
		t.Fatal("zero work should report 0")
	}
}

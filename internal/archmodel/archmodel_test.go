package archmodel

import (
	"testing"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"skylake", "a64fx", "zen2"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Fatalf("profile name %q, want %q", p.Name, name)
		}
	}
	if _, err := ByName("m1"); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestLineSizesMatchPaper(t *testing.T) {
	if Skylake.LineBytes != 64 || Zen2.LineBytes != 64 {
		t.Fatal("Skylake/Zen2 must have 64B lines")
	}
	if A64FX.LineBytes != 256 {
		t.Fatal("A64FX must have 256B lines")
	}
}

func TestProcessCacheGeometry(t *testing.T) {
	for _, p := range []Profile{Skylake, A64FX, Zen2} {
		c := p.NewProcessCache()
		if c.LineBytes() != p.LineBytes {
			t.Fatalf("%s: cache line %d, want %d", p.Name, c.LineBytes(), p.LineBytes)
		}
	}
	// Odd core counts still produce a valid power-of-two geometry.
	c := Skylake.WithCoresPerProcess(3).NewProcessCache()
	if c == nil {
		t.Fatal("nil cache")
	}
}

func TestWithCoresPerProcess(t *testing.T) {
	p := Skylake.WithCoresPerProcess(48)
	if p.CoresPerProcess != 48 || Skylake.CoresPerProcess == 48 {
		t.Fatal("WithCoresPerProcess mutated original or failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cores=0 accepted")
		}
	}()
	Skylake.WithCoresPerProcess(0)
}

func TestTimeMonotone(t *testing.T) {
	base := RankCost{Flops: 1e6, CacheMisses: 1e3, CommBytes: 1e4, CommMsgs: 10}
	t0 := Skylake.Time(base)
	for _, delta := range []RankCost{
		{Flops: 1e6}, {CacheMisses: 1e3}, {CommBytes: 1e5}, {CommMsgs: 100},
	} {
		more := base
		more.Add(delta)
		if Skylake.Time(more) <= t0 {
			t.Fatalf("cost not monotone in %+v", delta)
		}
	}
}

func TestMoreCoresFasterFlops(t *testing.T) {
	rc := RankCost{Flops: 1e9}
	t1 := Skylake.WithCoresPerProcess(1).Time(rc)
	t8 := Skylake.WithCoresPerProcess(8).Time(rc)
	if t8 >= t1 {
		t.Fatalf("8 cores (%g) not faster than 1 (%g)", t8, t1)
	}
}

func TestSolveTimeUsesWorstRank(t *testing.T) {
	costs := []RankCost{{Flops: 1e6}, {Flops: 5e6}, {Flops: 2e6}}
	got := Skylake.SolveTime(10, costs)
	want := 10 * Skylake.Time(costs[1])
	if got != want {
		t.Fatalf("SolveTime = %g, want %g", got, want)
	}
	if Skylake.SolveTime(10, nil) != 0 {
		t.Fatal("empty ranks should cost 0")
	}
}

func TestGFlopsPerProcess(t *testing.T) {
	rc := RankCost{Flops: 4e9} // exactly one second at 4 GF/s with 1 core
	p := Skylake.WithCoresPerProcess(1)
	if g := p.GFlopsPerProcess(rc); g != 4 {
		t.Fatalf("GFlops = %v, want 4", g)
	}
	// Misses reduce achieved GFLOP/s.
	rc2 := rc
	rc2.CacheMisses = 1e8
	if p.GFlopsPerProcess(rc2) >= 4 {
		t.Fatal("misses did not reduce achieved rate")
	}
	if p.GFlopsPerProcess(RankCost{}) != 0 {
		t.Fatal("zero work should report 0")
	}
}

func TestComputeCommSplitSumsToTime(t *testing.T) {
	rc := RankCost{Flops: 1e6, StreamBytes: 1e7, CacheMisses: 1e3, CommBytes: 1e4, CommMsgs: 10}
	for _, p := range []Profile{Skylake, A64FX, Zen2} {
		if got, want := p.ComputeTime(rc)+p.CommTime(rc), p.Time(rc); got != want {
			t.Fatalf("%s: ComputeTime+CommTime = %g, Time = %g", p.Name, got, want)
		}
	}
	if Skylake.CommTime(RankCost{Flops: 1e9}) != 0 {
		t.Fatal("CommTime charged for compute")
	}
	if Skylake.ComputeTime(RankCost{CommMsgs: 5, CommBytes: 1e6}) != 0 {
		t.Fatal("ComputeTime charged for communication")
	}
}

// With no windows, OverlapTime degenerates to the fully-exposed model.
func TestOverlapTimeNoWindowsEqualsTime(t *testing.T) {
	rc := RankCost{Flops: 1e6, StreamBytes: 1e7, CacheMisses: 1e3, CommBytes: 1e4, CommMsgs: 10}
	oc := OverlapCost{
		Compute: RankCost{Flops: rc.Flops, StreamBytes: rc.StreamBytes, CacheMisses: rc.CacheMisses},
		Exposed: RankCost{CommBytes: rc.CommBytes, CommMsgs: rc.CommMsgs},
	}
	if got, want := Skylake.OverlapTime(oc), Skylake.Time(rc); got != want {
		t.Fatalf("OverlapTime = %g, want Time = %g", got, want)
	}
}

// A window whose hiding compute exceeds its communication contributes
// nothing; one whose compute falls short contributes exactly the residue.
func TestOverlapCreditClamps(t *testing.T) {
	p := Skylake
	comm := RankCost{CommMsgs: 4, CommBytes: 4096}
	bigHide := RankCost{Flops: 1e9}   // compute ≫ comm
	smallHide := RankCost{Flops: 1e3} // compute ≪ comm
	compute := RankCost{Flops: 2e9}

	full := p.OverlapTime(OverlapCost{Compute: compute, Windows: []CommWindow{{Name: "halo", Comm: comm, Hide: bigHide}}})
	if full != p.ComputeTime(compute) {
		t.Fatalf("fully hidden window still charged: %g vs %g", full, p.ComputeTime(compute))
	}
	part := p.OverlapTime(OverlapCost{Compute: compute, Windows: []CommWindow{{Name: "halo", Comm: comm, Hide: smallHide}}})
	want := p.ComputeTime(compute) + p.CommTime(comm) - p.ComputeTime(smallHide)
	if diff := part - want; diff > 1e-18 || diff < -1e-18 {
		t.Fatalf("partial credit: got %g, want %g", part, want)
	}
}

// Overlap can only help: for the same traffic, the overlapped schedule is
// never modeled slower than the exposed one, and strictly faster as soon as
// any window has both traffic and hiding compute.
func TestOverlapNeverSlower(t *testing.T) {
	p := A64FX
	compute := RankCost{Flops: 5e7, StreamBytes: 1e8}
	halo := RankCost{CommMsgs: 6, CommBytes: 48 * 1024}
	red := RankCost{CommMsgs: 2, CommBytes: 48}
	exposedAll := RankCost{Flops: compute.Flops, StreamBytes: compute.StreamBytes,
		CommMsgs: halo.CommMsgs + red.CommMsgs, CommBytes: halo.CommBytes + red.CommBytes}
	oc := OverlapCost{
		Compute: compute,
		Exposed: red,
		Windows: []CommWindow{{Name: "halo", Comm: halo, Hide: RankCost{Flops: 4e7}}},
	}
	if p.OverlapTime(oc) >= p.Time(exposedAll) {
		t.Fatalf("overlapped %g not faster than exposed %g", p.OverlapTime(oc), p.Time(exposedAll))
	}
}

func TestSolveTimeOverlappedUsesWorstRank(t *testing.T) {
	mk := func(flops float64) OverlapCost {
		return OverlapCost{Compute: RankCost{Flops: int64(flops)}, Exposed: RankCost{CommMsgs: 1}}
	}
	costs := []OverlapCost{mk(1e6), mk(5e6), mk(2e6)}
	got := Skylake.SolveTimeOverlapped(10, costs)
	want := 10 * Skylake.OverlapTime(costs[1])
	if got != want {
		t.Fatalf("SolveTimeOverlapped = %g, want %g", got, want)
	}
	if Skylake.SolveTimeOverlapped(10, nil) != 0 {
		t.Fatal("empty ranks should cost 0")
	}
}

// OverlapReport is OverlapTime's breakdown and must reconcile with it
// bit-for-bit: same windows, same clamping, same accumulation order.
func TestOverlapReportReconcilesWithOverlapTime(t *testing.T) {
	oc := OverlapCost{
		Compute: RankCost{Flops: 2e6, StreamBytes: 1e7, CacheMisses: 2e3},
		Exposed: RankCost{CommBytes: 2e4, CommMsgs: 20},
		Windows: []CommWindow{
			// Tiny traffic under a huge hiding window: fully hidden.
			{Name: "halo", Comm: RankCost{CommBytes: 64, CommMsgs: 1}, Hide: RankCost{Flops: 1e6}},
			// Heavy traffic with no compute to hide it: fully exposed.
			{Name: "reduction", Comm: RankCost{CommBytes: 1e6, CommMsgs: 100}},
		},
	}
	for _, p := range []Profile{Skylake, A64FX, Zen2} {
		rep := p.OverlapReport(oc)
		if rep.TotalSec != p.OverlapTime(oc) {
			t.Fatalf("%s: TotalSec %g != OverlapTime %g", p.Name, rep.TotalSec, p.OverlapTime(oc))
		}
		if rep.ComputeSec != p.ComputeTime(oc.Compute) || rep.ExposedSec != p.CommTime(oc.Exposed) {
			t.Fatalf("%s: compute/exposed terms do not match the scalar model: %+v", p.Name, rep)
		}
		if len(rep.Windows) != 2 {
			t.Fatalf("%s: %d windows, want 2", p.Name, len(rep.Windows))
		}
		for _, w := range rep.Windows {
			if w.RawSec != p.CommTime(oc.Windows[0].Comm) && w.RawSec != p.CommTime(oc.Windows[1].Comm) {
				t.Fatalf("%s: window %q raw %g matches neither input", p.Name, w.Name, w.RawSec)
			}
			if w.HiddenSec != w.RawSec-w.ExposedSec {
				t.Fatalf("%s: window %q hidden %g != raw %g - exposed %g", p.Name, w.Name, w.HiddenSec, w.RawSec, w.ExposedSec)
			}
			if w.HiddenSec < 0 || w.ExposedSec < 0 {
				t.Fatalf("%s: window %q negative component: %+v", p.Name, w.Name, w)
			}
		}
		halo, red := rep.Windows[0], rep.Windows[1]
		if halo.ExposedSec != 0 || halo.HiddenSec != halo.RawSec {
			t.Fatalf("%s: fully hidable halo window not fully hidden: %+v", p.Name, halo)
		}
		if red.HiddenSec != 0 || red.ExposedSec != red.RawSec {
			t.Fatalf("%s: unhidable reduction window not fully exposed: %+v", p.Name, red)
		}
	}
}

func TestOverlapReportScale(t *testing.T) {
	oc := OverlapCost{
		Compute: RankCost{Flops: 1e6},
		Exposed: RankCost{CommBytes: 1e4, CommMsgs: 10},
		Windows: []CommWindow{{Name: "halo", Comm: RankCost{CommBytes: 1e5, CommMsgs: 5}, Hide: RankCost{Flops: 5e5}}},
	}
	rep := Skylake.OverlapReport(oc)
	got := rep.Scale(7)
	if got.TotalSec != 7*rep.TotalSec || got.ComputeSec != 7*rep.ComputeSec || got.ExposedSec != 7*rep.ExposedSec {
		t.Fatalf("Scale(7) scalar fields wrong: %+v vs %+v", got, rep)
	}
	for i, w := range got.Windows {
		o := rep.Windows[i]
		if w.RawSec != 7*o.RawSec || w.HideAvail != 7*o.HideAvail || w.HiddenSec != 7*o.HiddenSec || w.ExposedSec != 7*o.ExposedSec {
			t.Fatalf("Scale(7) window %d wrong: %+v vs %+v", i, w, o)
		}
	}
	if len(rep.Windows) != 1 || rep.Windows[0].HiddenSec <= 0 {
		t.Fatalf("test premise: partially hidden window expected, got %+v", rep.Windows)
	}
	// Scaling must not alias the receiver's windows.
	got.Windows[0].RawSec = -1
	if rep.Windows[0].RawSec == -1 {
		t.Fatal("Scale aliased the receiver's windows")
	}
}

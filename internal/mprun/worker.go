package mprun

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"strconv"
	"time"

	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/tcpmpi"
)

// Worker environment. Launch spawns the current executable with these set;
// MaybeWorker intercepts the process before it reaches normal main/test
// logic, so any binary (fsairank, fsaibench, fsaiserve, a test binary) can
// self-host its rank workers.
const (
	envWorker = "FSAICOMM_MP_WORKER"
	envCoord  = "FSAICOMM_MP_COORD"
	envRank   = "FSAICOMM_MP_RANK"
	envSize   = "FSAICOMM_MP_SIZE"
)

// Control-channel messages, gob-streamed over the worker's coordinator
// connection (worker dials, launcher accepts).
type helloMsg struct {
	Rank     int
	MeshAddr string
}

type coordMsg struct {
	// Start carries the job; exactly the first message has it set.
	Start *startMsg
	// Cancel asks the worker to cancel its job context; the worker still
	// reports a final result (with partial stats) before exiting.
	Cancel bool
}

type startMsg struct {
	Addrs   []string
	Timeout time.Duration
	Job     *JobSpec
}

type doneMsg struct {
	Outcome *RankOutcome
	Err     string
}

// MaybeWorker turns the current process into a rank worker if the worker
// environment is set, never returning in that case. Call it first thing in
// main() (and in TestMain for test binaries that launch multi-process
// solves); it is a no-op in ordinary processes.
func MaybeWorker() {
	if os.Getenv(envWorker) != "1" {
		return
	}
	if err := workerMain(); err != nil {
		fmt.Fprintf(os.Stderr, "fsairank worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func workerMain() error {
	rank, err := strconv.Atoi(os.Getenv(envRank))
	if err != nil {
		return fmt.Errorf("bad %s: %w", envRank, err)
	}
	size, err := strconv.Atoi(os.Getenv(envSize))
	if err != nil {
		return fmt.Errorf("bad %s: %w", envSize, err)
	}
	coord, err := net.DialTimeout("tcp", os.Getenv(envCoord), 30*time.Second)
	if err != nil {
		return fmt.Errorf("rank %d dialing coordinator: %w", rank, err)
	}
	defer coord.Close()
	enc := gob.NewEncoder(coord)
	dec := gob.NewDecoder(coord)

	// Open the mesh listener before registering, so every published address
	// is live by the time any peer dials it.
	ln, err := tcpmpi.ListenTCP()
	if err != nil {
		return fmt.Errorf("rank %d mesh listen: %w", rank, err)
	}
	if err := enc.Encode(helloMsg{Rank: rank, MeshAddr: ln.Addr().String()}); err != nil {
		return fmt.Errorf("rank %d hello: %w", rank, err)
	}
	var first coordMsg
	if err := dec.Decode(&first); err != nil {
		return fmt.Errorf("rank %d waiting for job: %w", rank, err)
	}
	if first.Start == nil {
		return fmt.Errorf("rank %d: first coordinator message carries no job", rank)
	}
	start := first.Start

	// The job context is canceled by a coordinator cancel message — or by
	// the coordinator connection dying, which means the launcher process is
	// gone and finishing the solve would report to nobody.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			var m coordMsg
			if err := dec.Decode(&m); err != nil {
				cancel()
				return
			}
			if m.Cancel {
				cancel()
			}
		}
	}()

	ep, err := tcpmpi.Connect(rank, ln, start.Addrs, tcpmpi.Config{Timeout: start.Timeout})
	if err != nil {
		enc.Encode(doneMsg{Err: err.Error()})
		return err
	}
	defer ep.Close()
	// Each worker meters its own rank's traffic; the launcher merges the
	// per-rank outcomes. The meter carries the job's declared topology so
	// the intra/inter split is identical to the in-process backend's.
	topo, err := start.Job.Topology(size)
	if err != nil {
		enc.Encode(doneMsg{Err: err.Error()})
		return err
	}
	c := simmpi.NewComm(ep, simmpi.NewMeterTopo(size, topo), start.Timeout)
	out, jobErr := RunJob(ctx, c, start.Job)
	if jobErr == nil {
		// The job's final iteration may have posted nonblocking sends whose
		// chain goroutines are still flushing; exiting the process before
		// they reach the wire would turn a peer's matching receive into a
		// spurious rank-lost failure.
		c.Quiesce()
	}
	msg := doneMsg{Outcome: out}
	if jobErr != nil {
		msg.Err = jobErr.Error()
	}
	if err := enc.Encode(msg); err != nil {
		return fmt.Errorf("rank %d reporting result: %w", rank, err)
	}
	return jobErr
}

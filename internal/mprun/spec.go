// Package mprun runs one rank's share of a distributed solve — the "rank
// job" — identically under both transport backends. The facade's in-process
// path calls RunSolveRank/RunPreparedRank directly from goroutine ranks; the
// multi-process path ships a gob-encoded spec to fsairank worker processes
// (spawned by Launch, self-hosted by any binary that calls MaybeWorker)
// whose TCP mesh communicator runs the very same function. One code path on
// both sides is what makes the cross-backend differential tests meaningful:
// any divergence in results or meter structure is the transport's fault, not
// a drifted reimplementation of the solve.
package mprun

import (
	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/experiments"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
)

// SolveSpec is the full-setup rank job: partitioned matrix in, solution
// slice out. Every rank receives the same spec (the permuted matrix and
// right-hand side are small at this reproduction's scale; each rank extracts
// its own rows) — what varies per rank is only the rank itself.
type SolveSpec struct {
	// N is the system dimension; Ranks the world size; Offsets the layout
	// row offsets (len Ranks+1).
	N       int
	Ranks   int
	Offsets []int
	// PA and PB are the partition-permuted matrix and right-hand side.
	PA *sparse.CSR
	PB []float64
	// Cfg shapes the preconditioner build; Cfg.Precision also selects the
	// solve's precision (FP32 runs the iterative-refinement loop).
	Cfg core.Config
	// Solver knobs (krylov.Options subset; the workspace is per-rank local).
	// Solver selects the Krylov loop: CG (the FSAI family) or restarted
	// GMRES with the Restart cycle length (the SPAI method; the adaptive
	// knobs ride in Cfg).
	Solver               krylov.Solver
	Restart              int
	Tol                  float64
	MaxIter              int
	Variant              krylov.CGVariant
	Trace                bool
	ResidualReplaceEvery int
	// Arch names the cost-model profile ("" = skylake).
	Arch string
	// Nodes/RanksPerNode declare the two-level topology (0/0 = flat); when a
	// multi-rank topology is in play the halo plans aggregate cross-node
	// traffic per node pair unless NoNodeAggregation keeps the flat per-rank
	// schedule (the metered baseline the node-aware benchmarks compare to).
	Nodes, RanksPerNode int
	NoNodeAggregation   bool
}

// PreparedRankSpec is the cached-setup rank job: the localized matrix and
// factor views plus halo schedules built once by Prepare, shipped (or, in
// process, shared) so the rank pays only the Krylov loop. Unlike SolveSpec
// it is per-rank: each rank gets exactly its own share.
type PreparedRankSpec struct {
	N       int
	Ranks   int
	Offsets []int
	Lo, Hi  int
	// Localized views (read-only during solves). GLZ/GTLZ carry the FSAI
	// factor pair for CG solves; MLZ carries the explicit SPAI inverse for
	// GMRES solves (the unused set is nil).
	ALZ, GLZ, GTLZ *distmat.Localized
	MLZ            *distmat.Localized
	// Halo-plan schedules as plain index lists (see
	// distmat.NewHaloPlanFromSchedule) plus the need-count matrices captured
	// at Prepare time, from which a per-solve topology's node-aware relay
	// schedule is derived with zero extra communication.
	ASend, ARecv   [][]int
	GSend, GRecv   [][]int
	GTSend, GTRecv [][]int
	MSend, MRecv   [][]int
	ACounts        []int64
	GCounts        []int64
	GTCounts       []int64
	MCounts        []int64
	// BLocal is this rank's slice of the permuted right-hand side.
	BLocal []float64
	// Informational, for the result assembly.
	Pct, Imbalance float64
	// Solver knobs (Solver/Restart as in SolveSpec).
	Solver               krylov.Solver
	Restart              int
	Tol                  float64
	MaxIter              int
	Variant              krylov.CGVariant
	Trace                bool
	ResidualReplaceEvery int
	Arch                 string
	// Precision selects the solve's value width: FP32 narrows the shipped
	// factor views locally and runs the iterative-refinement loop.
	Precision krylov.Precision
	// Per-solve topology (see SolveSpec): a cached prepared system can be
	// solved under any node grouping without redoing the setup exchange.
	Nodes, RanksPerNode int
	NoNodeAggregation   bool
}

// JobSpec is the envelope a worker process receives: exactly one of the
// job kinds is set.
type JobSpec struct {
	Solve         *SolveSpec
	Prepared      *PreparedRankSpec
	SolveBatch    *SolveBatchSpec
	PreparedBatch *PreparedBatchSpec
}

// Topology resolves the job's declared node grouping against the world
// size. The zero declaration yields the zero (flat) topology, keeping every
// pre-topology meter reading bit-identical.
func (j *JobSpec) Topology(size int) (simmpi.Topology, error) {
	var nodes, rpn int
	switch {
	case j.Solve != nil:
		nodes, rpn = j.Solve.Nodes, j.Solve.RanksPerNode
	case j.Prepared != nil:
		nodes, rpn = j.Prepared.Nodes, j.Prepared.RanksPerNode
	case j.SolveBatch != nil:
		nodes, rpn = j.SolveBatch.Nodes, j.SolveBatch.RanksPerNode
	case j.PreparedBatch != nil && j.PreparedBatch.Prepared != nil:
		nodes, rpn = j.PreparedBatch.Prepared.Nodes, j.PreparedBatch.Prepared.RanksPerNode
	}
	if nodes == 0 && rpn == 0 {
		return simmpi.Topology{}, nil
	}
	return simmpi.ResolveTopology(size, nodes, rpn)
}

// RankOutcome is what one rank's job reports back. The facade assembles the
// caller-facing Result from the full outcome set; the multi-process launcher
// gob-ships outcomes from the workers.
type RankOutcome struct {
	Rank   int
	Lo, Hi int
	// XLocal is the rank's slice of the (possibly partial) solution.
	XLocal []float64
	// Solver statistics (meaningful on rank 0, which runs the canonical
	// residual recurrence; other ranks agree by construction).
	Iterations  int
	Converged   bool
	RelResidual float64
	// Canceled reports that the CG loop stopped on a context verdict.
	Canceled bool
	// Broken reports a solver breakdown (NaN/Inf recurrence or non-SPD
	// curvature): the loop stopped early, XLocal is the partial iterate.
	Broken bool
	// Refinements counts the FP64 iterative-refinement steps of a
	// mixed-precision solve (0 for FP64 solves); Iterations then counts the
	// total inner iterations across all steps.
	Refinements int
	// Pct and Imbalance are the build metrics (rank 0 only; zero for
	// prepared jobs, whose metrics ride in the spec).
	Pct, Imbalance float64
	// Trace is the rank's telemetry when the spec asked for it (rank 0).
	Trace *krylov.IterTrace
	// Batch carries the per-column outcomes of a batched job (nil for
	// scalar jobs). For batched jobs XLocal is the rank's interleaved
	// (Hi−Lo)×K solution block and Iterations the batch loop's iteration
	// count (the maximum over columns).
	Batch *BatchOutcome
	// Cost is the rank's modeled per-iteration cost inputs.
	Cost experiments.IterCostInputs
	// SetupComm and SolveComm are this rank's metered traffic in the two
	// phases, taken as RankSnapshot deltas. Summed over ranks they give the
	// deterministic world totals the differential tests compare bit-for-bit.
	SetupComm, SolveComm simmpi.Snapshot
	// SetupNanos and SolveNanos are the rank's wall-clock phase durations.
	SetupNanos, SolveNanos int64
}

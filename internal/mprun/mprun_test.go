package mprun_test

import (
	"context"
	"os"
	"reflect"
	"testing"
	"time"

	"fsaicomm/internal/core"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/mprun"
	"fsaicomm/internal/simmpi"
)

// TestMain makes this test binary self-host its rank workers: when Launch
// re-executes it with the worker environment set, MaybeWorker takes over
// before any test runs.
func TestMain(m *testing.M) {
	mprun.MaybeWorker()
	os.Exit(m.Run())
}

func evenOffsets(n, ranks int) []int {
	offs := make([]int, ranks+1)
	for r := 0; r <= ranks; r++ {
		offs[r] = r * n / ranks
	}
	return offs
}

func solveSpec(ranks int) *mprun.SolveSpec {
	a := matgen.Poisson2D(16, 16)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)/7
	}
	return &mprun.SolveSpec{
		N:       a.Rows,
		Ranks:   ranks,
		Offsets: evenOffsets(a.Rows, ranks),
		PA:      a,
		PB:      b,
		Cfg:     core.Config{Method: core.FSAIEComm, Filter: 0.01, LineBytes: 64},
		Tol:     1e-8,
		MaxIter: 500,
		Variant: krylov.CGClassic,
	}
}

// runSim executes the same spec with in-process goroutine ranks — the oracle
// the multi-process path must match bit for bit.
func runSim(t *testing.T, ranks int, spec *mprun.SolveSpec) []*mprun.RankOutcome {
	t.Helper()
	outs := make([]*mprun.RankOutcome, ranks)
	_, err := simmpi.Run(ranks, 30*time.Second, func(c *simmpi.Comm) error {
		out, err := mprun.RunSolveRank(context.Background(), c, spec)
		if err != nil {
			return err
		}
		outs[c.Rank()] = out
		return nil
	})
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	return outs
}

// TestLaunchSolveMatchesSim is the round-trip check for the multi-process
// machinery itself: spawn 4 worker processes, run the same rank job the sim
// backend runs, and require bit-identical solutions, iteration counts, and
// per-phase meter snapshots on every rank.
func TestLaunchSolveMatchesSim(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	const ranks = 4
	spec := solveSpec(ranks)
	want := runSim(t, ranks, spec)

	job := &mprun.JobSpec{Solve: spec}
	got, err := mprun.Launch(context.Background(), ranks, 60*time.Second,
		func(rank int) *mprun.JobSpec { return job })
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	for r := 0; r < ranks; r++ {
		w, g := want[r], got[r]
		if g == nil {
			t.Fatalf("rank %d: no outcome", r)
		}
		if g.Rank != r || g.Lo != w.Lo || g.Hi != w.Hi {
			t.Fatalf("rank %d: layout mismatch: got [%d,%d) want [%d,%d)", r, g.Lo, g.Hi, w.Lo, w.Hi)
		}
		if !reflect.DeepEqual(g.XLocal, w.XLocal) {
			t.Errorf("rank %d: XLocal differs between backends", r)
		}
		if g.Iterations != w.Iterations || g.Converged != w.Converged || g.RelResidual != w.RelResidual {
			t.Errorf("rank %d: stats differ: got (%d, %v, %g) want (%d, %v, %g)",
				r, g.Iterations, g.Converged, g.RelResidual, w.Iterations, w.Converged, w.RelResidual)
		}
		if g.SetupComm != w.SetupComm {
			t.Errorf("rank %d: setup comm differs:\n got %+v\nwant %+v", r, g.SetupComm, w.SetupComm)
		}
		if g.SolveComm != w.SolveComm {
			t.Errorf("rank %d: solve comm differs:\n got %+v\nwant %+v", r, g.SolveComm, w.SolveComm)
		}
	}
	if !want[0].Converged {
		t.Fatal("oracle did not converge — fixture too hard")
	}
}

// TestLaunchCancelReturnsPartialOutcomes cancels mid-solve and expects every
// worker to wind down cleanly, reporting a Canceled outcome rather than
// hanging or dying.
func TestLaunchCancelReturnsPartialOutcomes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	const ranks = 2
	// A big enough system with an unreachably tiny (but positive: zero means
	// "default") tolerance iterates far past the cancel point; the 16×16
	// fixture would hit an exact-zero residual within milliseconds.
	a := matgen.Poisson2D(64, 64)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)/7
	}
	spec := &mprun.SolveSpec{
		N: a.Rows, Ranks: ranks, Offsets: evenOffsets(a.Rows, ranks), PA: a, PB: b,
		Cfg: core.Config{Method: core.FSAIEComm, Filter: 0.01, LineBytes: 64},
		Tol: 1e-300, MaxIter: 1 << 30, Variant: krylov.CGClassic,
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	job := &mprun.JobSpec{Solve: spec}
	outs, err := mprun.Launch(ctx, ranks, 60*time.Second,
		func(rank int) *mprun.JobSpec { return job })
	if err != nil {
		t.Fatalf("Launch after cancel: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancel took %v to wind down", elapsed)
	}
	for r, out := range outs {
		if out == nil {
			t.Fatalf("rank %d: no outcome after cancel", r)
		}
		if !out.Canceled {
			t.Errorf("rank %d: Canceled = false after mid-solve cancel", r)
		}
		if out.Converged {
			t.Errorf("rank %d: Converged = true with Tol=0", r)
		}
		if len(out.XLocal) != out.Hi-out.Lo {
			t.Errorf("rank %d: partial XLocal len %d, want %d", r, len(out.XLocal), out.Hi-out.Lo)
		}
	}
}

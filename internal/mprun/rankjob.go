package mprun

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/experiments"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/simmpi"
)

// RunJob dispatches a job envelope to its runner.
func RunJob(ctx context.Context, c *simmpi.Comm, job *JobSpec) (*RankOutcome, error) {
	switch {
	case job.Solve != nil:
		return RunSolveRank(ctx, c, job.Solve)
	case job.Prepared != nil:
		return RunPreparedRank(ctx, c, job.Prepared, nil)
	case job.SolveBatch != nil:
		return RunSolveBatchRank(ctx, c, job.SolveBatch)
	case job.PreparedBatch != nil:
		return RunPreparedBatchRank(ctx, c, job.PreparedBatch)
	default:
		return nil, fmt.Errorf("mprun: empty job spec")
	}
}

func profileFor(arch string) (archmodel.Profile, error) {
	if arch == "" {
		return archmodel.Skylake, nil
	}
	return archmodel.ByName(arch)
}

// preparedPlan rebuilds a halo plan from a prepared schedule under the
// communicator's topology: flat worlds (or schedules predating need-count
// capture) get the historical flat plan; topology worlds get a node-aware
// plan derived from the shipped need counts, downgraded to the flat baseline
// when the spec asks for no aggregation.
func preparedPlan(c *simmpi.Comm, spec *PreparedRankSpec, send, recv [][]int, counts []int64) *distmat.HaloPlan {
	topo := c.Topology()
	if topo.Flat() || counts == nil {
		return distmat.NewHaloPlanFromSchedule(send, recv)
	}
	p := distmat.NewHaloPlanFromScheduleTopo(send, recv, counts, c.Rank(), topo)
	if spec.NoNodeAggregation {
		p.SetNodeAware(false)
	}
	return p
}

// mixedAInner derives the float32 inner operator of a mixed-precision solve:
// it shares aOp's localized matrix (whose float32 view is built lazily) but
// clones the plan, so the inner halo runs half-width while aOp keeps the
// full-width schedule for the outer FP64 residual. The clone preserves the
// plan's node-awareness, so NoNodeAggregation and topology routing carry
// over unchanged.
func mixedAInner(aOp *distmat.Op, variant krylov.CGVariant) *distmat.Op {
	var opts []distmat.OpOption
	if variant != krylov.CGClassic {
		opts = append(opts, distmat.WithOverlap())
	}
	inner := distmat.NewOpFromParts(aOp.LZ, aOp.Plan.Clone(), opts...)
	inner.SetF32(true)
	return inner
}

// runDistSolve runs one rank's scalar distributed solve at the requested
// precision: FP64 is the plain DistCG loop; FP32 runs DistCG as the inner
// solve of the FP64 iterative-refinement loop, with the factor operators
// (already narrowed by the caller) and a float32 twin of the A operator.
func runDistSolve(c *simmpi.Comm, aOp, gOp, gtOp *distmat.Op, b, x []float64, opt krylov.Options, prec krylov.Precision) (krylov.Stats, error) {
	m := krylov.NewDistSplit(gOp, gtOp)
	if prec != krylov.FP32 {
		return krylov.DistCG(c, aOp, b, x, m, opt, nil)
	}
	return krylov.DistCGRefined(c, aOp, mixedAInner(aOp, opt.Variant), b, x, m, opt, nil)
}

// RunSolveRank executes one rank of a full SolveDistributed: extract local
// rows, build the preconditioner, assemble the operators, run distributed
// CG. It is the single implementation behind both backends — the facade's
// goroutine ranks and the fsairank worker processes call exactly this.
//
// ctx must be non-nil and the same "all ranks or none" choice on every rank:
// the CG loop polls it through a per-iteration collective verdict, which is
// itself a collective every rank must enter.
func RunSolveRank(ctx context.Context, c *simmpi.Comm, spec *SolveSpec) (*RankOutcome, error) {
	rank := c.Rank()
	prof, err := profileFor(spec.Arch)
	if err != nil {
		return nil, err
	}
	layout := &distmat.Layout{N: spec.N, Offsets: spec.Offsets}
	lo, hi := layout.Range(rank)
	t0 := time.Now()
	aRows := distmat.ExtractLocalRows(spec.PA, lo, hi)
	bd, err := core.BuildPrecond(c, layout, aRows, spec.Cfg)
	if err != nil {
		return nil, err
	}
	gmres := spec.Solver == krylov.SolverGMRES
	var aOpts []distmat.OpOption
	if spec.Variant != krylov.CGClassic {
		aOpts = append(aOpts, distmat.WithOverlap())
	}
	aOp := distmat.NewOp(c, layout, lo, hi, aRows, aOpts...)
	if spec.NoNodeAggregation {
		// Baseline mode: keep the flat per-rank schedule under the declared
		// topology, so the meter still classifies intra vs inter traffic but
		// nothing is aggregated — the comparison plan for BENCH_nodeaware.
		aOp.Plan.SetNodeAware(false)
		if gmres {
			bd.MOp.Plan.SetNodeAware(false)
		} else {
			bd.GOp.Plan.SetNodeAware(false)
			bd.GTOp.Plan.SetNodeAware(false)
		}
	}
	var cost experiments.IterCostInputs
	if gmres {
		cost = experiments.AssembleSPAIGMRESIterCost(prof, aOp, bd.MOp, hi-lo, spec.Ranks, spec.Restart)
	} else {
		cost = experiments.AssembleIterCost(prof, aOp, bd.GOp, bd.GTOp, hi-lo, spec.Ranks, spec.Variant)
	}
	// One barrier separates the phases: traffic up to and including it is
	// "setup", everything after is "solve". Phase attribution needs no meter
	// reset (and hence no cross-rank reset race): each rank's counters are
	// charged synchronously on its own goroutine, so snapshot deltas are
	// exact and deterministic on every backend.
	c.Barrier()
	setupComm := c.Meter().RankSnapshot(rank)
	out := &RankOutcome{
		Rank: rank, Lo: lo, Hi: hi,
		Cost:       cost,
		SetupComm:  setupComm,
		SetupNanos: time.Since(t0).Nanoseconds(),
	}
	if rank == 0 {
		out.Pct = bd.PctNNZIncrease
		out.Imbalance = bd.ImbalanceIndex
	}
	t1 := time.Now()
	xl := make([]float64, hi-lo)
	// Each rank gets its own Workspace; workspaces must never be shared
	// between concurrent solves. BuildPrecond already narrowed GOp/GTOp under
	// Cfg.Precision FP32.
	opt := krylov.Options{Tol: spec.Tol, MaxIter: spec.MaxIter,
		Variant: spec.Variant, Restart: spec.Restart,
		Work:                 &krylov.Workspace{},
		Trace:                spec.Trace,
		ResidualReplaceEvery: spec.ResidualReplaceEvery,
		Ctx:                  ctx}
	var st krylov.Stats
	if gmres {
		st, err = krylov.DistGMRES(c, aOp, spec.PB[lo:hi], xl, krylov.NewDistMatPrecond(bd.MOp), opt, nil)
	} else {
		st, err = runDistSolve(c, aOp, bd.GOp, bd.GTOp, spec.PB[lo:hi], xl, opt, spec.Cfg.Precision)
	}
	canceled := errors.Is(err, krylov.ErrCanceled)
	broken := errors.Is(err, krylov.ErrBreakdown)
	if err != nil && !errors.Is(err, krylov.ErrNoConvergence) && !canceled && !broken {
		return nil, err
	}
	out.SolveNanos = time.Since(t1).Nanoseconds()
	out.SolveComm = c.Meter().RankSnapshot(rank).Sub(setupComm)
	out.XLocal = xl
	out.Iterations = st.Iterations
	out.Converged = st.Converged
	out.RelResidual = st.RelResidual
	out.Canceled = canceled
	out.Broken = broken
	out.Refinements = st.Refinements
	out.Trace = st.Trace
	return out, nil
}

// RunPreparedRank executes one rank of a Prepared.Solve: the localized views
// and halo schedules come ready-made in the spec, so the rank performs no
// setup communication and pays only the Krylov loop. ws may carry a pooled
// workspace (nil allocates a fresh one).
func RunPreparedRank(ctx context.Context, c *simmpi.Comm, spec *PreparedRankSpec, ws *krylov.Workspace) (*RankOutcome, error) {
	rank := c.Rank()
	prof, err := profileFor(spec.Arch)
	if err != nil {
		return nil, err
	}
	gmres := spec.Solver == krylov.SolverGMRES
	var opOpts []distmat.OpOption
	if spec.Variant != krylov.CGClassic {
		opOpts = append(opOpts, distmat.WithOverlap())
	}
	aOp := distmat.NewOpFromParts(spec.ALZ, preparedPlan(c, spec, spec.ASend, spec.ARecv, spec.ACounts), opOpts...)
	var gOp, gtOp, mOp *distmat.Op
	var cost experiments.IterCostInputs
	if gmres {
		mOp = distmat.NewOpFromParts(spec.MLZ, preparedPlan(c, spec, spec.MSend, spec.MRecv, spec.MCounts))
		cost = experiments.AssembleSPAIGMRESIterCost(prof, aOp, mOp, spec.Hi-spec.Lo, spec.Ranks, spec.Restart)
	} else {
		gOp = distmat.NewOpFromParts(spec.GLZ, preparedPlan(c, spec, spec.GSend, spec.GRecv, spec.GCounts), opOpts...)
		gtOp = distmat.NewOpFromParts(spec.GTLZ, preparedPlan(c, spec, spec.GTSend, spec.GTRecv, spec.GTCounts), opOpts...)
		if spec.Precision == krylov.FP32 {
			// The prepared factor views ship in FP64; narrow the rank-private
			// operators (the float32 value copy is cached on the shared Localized,
			// built once across solves).
			gOp.SetF32(true)
			gtOp.SetF32(true)
		}
		cost = experiments.AssembleIterCost(prof, aOp, gOp, gtOp, spec.Hi-spec.Lo, spec.Ranks, spec.Variant)
	}
	setupComm := c.Meter().RankSnapshot(rank)
	// SetupNanos stays 0: a prepared solve's contract is that setup was paid
	// once in Prepare, and the facade reports SetupTime 0 accordingly.
	out := &RankOutcome{
		Rank: rank, Lo: spec.Lo, Hi: spec.Hi,
		Cost:      cost,
		SetupComm: setupComm,
	}
	if ws == nil {
		ws = &krylov.Workspace{}
	}
	t1 := time.Now()
	xl := make([]float64, spec.Hi-spec.Lo)
	opt := krylov.Options{Tol: spec.Tol, MaxIter: spec.MaxIter,
		Variant: spec.Variant, Restart: spec.Restart,
		Work:                 ws,
		Trace:                spec.Trace,
		ResidualReplaceEvery: spec.ResidualReplaceEvery,
		Ctx:                  ctx}
	var st krylov.Stats
	if gmres {
		st, err = krylov.DistGMRES(c, aOp, spec.BLocal, xl, krylov.NewDistMatPrecond(mOp), opt, nil)
	} else {
		st, err = runDistSolve(c, aOp, gOp, gtOp, spec.BLocal, xl, opt, spec.Precision)
	}
	canceled := errors.Is(err, krylov.ErrCanceled)
	broken := errors.Is(err, krylov.ErrBreakdown)
	if err != nil && !errors.Is(err, krylov.ErrNoConvergence) && !canceled && !broken {
		return nil, err
	}
	out.SolveNanos = time.Since(t1).Nanoseconds()
	out.SolveComm = c.Meter().RankSnapshot(rank).Sub(setupComm)
	out.XLocal = xl
	out.Iterations = st.Iterations
	out.Converged = st.Converged
	out.RelResidual = st.RelResidual
	out.Canceled = canceled
	out.Broken = broken
	out.Refinements = st.Refinements
	out.Trace = st.Trace
	return out, nil
}

package mprun

// Batched (multi-RHS) rank jobs. Like their scalar counterparts they are
// the single implementation behind both transport backends: the facade's
// goroutine ranks call RunSolveBatchRank/RunPreparedBatchRank directly and
// the fsairank worker processes reach them through the same gob-shipped
// JobSpec envelope.

import (
	"context"
	"errors"
	"time"

	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
)

// SolveBatchSpec is the full-setup batched rank job: the partitioned
// matrix plus K permuted right-hand sides, interleaved row-major
// (PB[i*K+c] = component i of column c).
type SolveBatchSpec struct {
	N       int
	Ranks   int
	Offsets []int
	PA      *sparse.CSR
	K       int
	PB      []float64
	Cfg     core.Config
	Tol     float64
	MaxIter int
	Variant krylov.CGVariant
	Arch    string
	// Per-solve topology (see SolveSpec).
	Nodes, RanksPerNode int
	NoNodeAggregation   bool
}

// PreparedBatchSpec is the cached-setup batched rank job: the scalar
// prepared spec carries the localized views, halo schedules and solver
// knobs (its BLocal is nil); BLocal here is the rank's interleaved
// right-hand-side block of K columns.
type PreparedBatchSpec struct {
	Prepared *PreparedRankSpec
	K        int
	BLocal   []float64
}

// BatchOutcome is the per-column solver outcome of a batched rank job.
type BatchOutcome struct {
	K           int
	Iterations  []int
	Converged   []bool
	RelResidual []float64
	Broken      []bool
	// Refinements counts the FP64 iterative-refinement steps of a
	// mixed-precision batched solve (0 for FP64).
	Refinements int
}

func newBatchOutcome(bs krylov.BatchStats) *BatchOutcome {
	o := &BatchOutcome{
		K:           bs.K,
		Iterations:  make([]int, bs.K),
		Converged:   make([]bool, bs.K),
		RelResidual: make([]float64, bs.K),
		Broken:      append([]bool(nil), bs.Broken...),
		Refinements: bs.Refinements,
	}
	for c := range bs.Cols {
		o.Iterations[c] = bs.Cols[c].Iterations
		o.Converged[c] = bs.Cols[c].Converged
		o.RelResidual[c] = bs.Cols[c].RelResidual
	}
	return o
}

// RunSolveBatchRank executes one rank of a full batched solve: extract
// local rows, build the preconditioner, run the batched distributed CG on
// all K columns at once. XLocal in the outcome is the rank's interleaved
// (hi−lo)×K solution block.
func RunSolveBatchRank(ctx context.Context, c *simmpi.Comm, spec *SolveBatchSpec) (*RankOutcome, error) {
	rank := c.Rank()
	layout := &distmat.Layout{N: spec.N, Offsets: spec.Offsets}
	lo, hi := layout.Range(rank)
	t0 := time.Now()
	aRows := distmat.ExtractLocalRows(spec.PA, lo, hi)
	bd, err := core.BuildPrecond(c, layout, aRows, spec.Cfg)
	if err != nil {
		return nil, err
	}
	// The batched loops use the blocking SpMM schedule only; no overlap view.
	aOp := distmat.NewOp(c, layout, lo, hi, aRows)
	if spec.NoNodeAggregation {
		aOp.Plan.SetNodeAware(false)
		bd.GOp.Plan.SetNodeAware(false)
		bd.GTOp.Plan.SetNodeAware(false)
	}
	c.Barrier()
	setupComm := c.Meter().RankSnapshot(rank)
	out := &RankOutcome{
		Rank: rank, Lo: lo, Hi: hi,
		SetupComm:  setupComm,
		SetupNanos: time.Since(t0).Nanoseconds(),
	}
	if rank == 0 {
		out.Pct = bd.PctNNZIncrease
		out.Imbalance = bd.ImbalanceIndex
	}
	// BuildPrecond already narrowed GOp/GTOp under Cfg.Precision FP32.
	return finishBatchRank(ctx, c, out, aOp, bd.GOp, bd.GTOp, spec.PB[lo*spec.K:hi*spec.K], spec.K,
		krylov.Options{Tol: spec.Tol, MaxIter: spec.MaxIter, Variant: spec.Variant, Ctx: ctx},
		spec.Cfg.Precision)
}

// RunPreparedBatchRank executes one rank of a Prepared.SolveBatch: the
// localized views and halo schedules come ready-made, so the rank pays
// only the batched Krylov loop.
func RunPreparedBatchRank(ctx context.Context, c *simmpi.Comm, spec *PreparedBatchSpec) (*RankOutcome, error) {
	rank := c.Rank()
	ps := spec.Prepared
	aOp := distmat.NewOpFromParts(ps.ALZ, preparedPlan(c, ps, ps.ASend, ps.ARecv, ps.ACounts))
	gOp := distmat.NewOpFromParts(ps.GLZ, preparedPlan(c, ps, ps.GSend, ps.GRecv, ps.GCounts))
	gtOp := distmat.NewOpFromParts(ps.GTLZ, preparedPlan(c, ps, ps.GTSend, ps.GTRecv, ps.GTCounts))
	if ps.Precision == krylov.FP32 {
		gOp.SetF32(true)
		gtOp.SetF32(true)
	}
	setupComm := c.Meter().RankSnapshot(rank)
	out := &RankOutcome{
		Rank: rank, Lo: ps.Lo, Hi: ps.Hi,
		SetupComm: setupComm,
	}
	if rank == 0 {
		out.Pct = ps.Pct
		out.Imbalance = ps.Imbalance
	}
	return finishBatchRank(ctx, c, out, aOp, gOp, gtOp, spec.BLocal, spec.K,
		krylov.Options{Tol: ps.Tol, MaxIter: ps.MaxIter, Variant: ps.Variant, Ctx: ctx},
		ps.Precision)
}

// finishBatchRank runs the batched CG loop at the requested precision and
// folds its outcome into out.
func finishBatchRank(ctx context.Context, c *simmpi.Comm, out *RankOutcome, aOp, gOp, gtOp *distmat.Op, bLocal []float64, k int, opt krylov.Options, prec krylov.Precision) (*RankOutcome, error) {
	t1 := time.Now()
	nl := out.Hi - out.Lo
	xl := make([]float64, nl*k)
	var bs krylov.BatchStats
	var err error
	m := krylov.NewDistSplitBatch(gOp, gtOp, k)
	if prec == krylov.FP32 {
		// The batched loops use the blocking schedule, so the inner A twin
		// needs no overlap view.
		aInner := distmat.NewOpFromParts(aOp.LZ, aOp.Plan.Clone())
		aInner.SetF32(true)
		bs, err = krylov.DistCGBatchRefined(c, aOp, aInner, bLocal, xl, m, k, opt, nil)
	} else {
		bs, err = krylov.DistCGBatch(c, aOp, bLocal, xl, m, k, opt, nil)
	}
	canceled := errors.Is(err, krylov.ErrCanceled)
	if err != nil && !errors.Is(err, krylov.ErrNoConvergence) && !canceled {
		return nil, err
	}
	out.SolveNanos = time.Since(t1).Nanoseconds()
	out.SolveComm = c.Meter().RankSnapshot(out.Rank).Sub(out.SetupComm)
	out.XLocal = xl
	out.Iterations = bs.Iterations
	out.Canceled = canceled
	out.Refinements = bs.Refinements
	out.Batch = newBatchOutcome(bs)
	return out, nil
}

package mprun

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"
)

// killGrace is how long a canceled launch waits for workers to report their
// partial outcomes before killing the processes outright.
const killGrace = 5 * time.Second

// worker is the launcher's handle on one rank process.
type worker struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	// emu serializes control writes: the cancel broadcast may race the
	// initial start message only through this mutex.
	emu sync.Mutex
}

func (w *worker) send(m coordMsg) error {
	w.emu.Lock()
	defer w.emu.Unlock()
	return w.enc.Encode(m)
}

// Launch runs a size-rank job with every rank in its own OS process. It
// re-executes the current binary (workers self-select via MaybeWorker),
// collects each worker's mesh address, distributes the full address list plus
// that rank's job, and gathers the per-rank outcomes.
//
// Canceling ctx broadcasts a cancel to every worker; ranks that wind down
// within a grace period still report partial outcomes (Canceled set), after
// which any stragglers are killed. The returned error is the lowest-rank
// failure, if any.
func Launch(ctx context.Context, size int, timeout time.Duration, jobFor func(rank int) *JobSpec) ([]*RankOutcome, error) {
	if size < 1 {
		return nil, fmt.Errorf("mprun: size %d < 1", size)
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("mprun: locating executable: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mprun: coordinator listen: %w", err)
	}
	defer ln.Close()

	procs := make([]*exec.Cmd, size)
	defer func() {
		// Belt and braces: whatever path we leave by, no worker outlives the
		// launch. Kill is a no-op on already-exited processes.
		for _, cmd := range procs {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
			}
			if cmd != nil {
				cmd.Wait()
			}
		}
	}()
	for r := 0; r < size; r++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envWorker+"=1",
			envCoord+"="+ln.Addr().String(),
			fmt.Sprintf("%s=%d", envRank, r),
			fmt.Sprintf("%s=%d", envSize, size),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("mprun: spawning rank %d: %w", r, err)
		}
		procs[r] = cmd
	}

	// Rendezvous: each worker dials in and announces its rank and mesh
	// address; connection order is arbitrary, the hello sorts them out.
	workers := make([]*worker, size)
	addrs := make([]string, size)
	if d, ok := ln.(*net.TCPListener); ok {
		d.SetDeadline(time.Now().Add(timeout))
	}
	for i := 0; i < size; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("mprun: waiting for workers (%d/%d registered): %w", i, size, err)
		}
		w := &worker{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
		var hello helloMsg
		conn.SetReadDeadline(time.Now().Add(timeout))
		if err := w.dec.Decode(&hello); err != nil {
			return nil, fmt.Errorf("mprun: worker hello: %w", err)
		}
		conn.SetReadDeadline(time.Time{})
		if hello.Rank < 0 || hello.Rank >= size || workers[hello.Rank] != nil {
			return nil, fmt.Errorf("mprun: unexpected worker rank %d", hello.Rank)
		}
		workers[hello.Rank] = w
		addrs[hello.Rank] = hello.MeshAddr
	}
	defer func() {
		for _, w := range workers {
			w.conn.Close()
		}
	}()

	for r, w := range workers {
		if err := w.send(coordMsg{Start: &startMsg{Addrs: addrs, Timeout: timeout, Job: jobFor(r)}}); err != nil {
			return nil, fmt.Errorf("mprun: starting rank %d: %w", r, err)
		}
	}

	outcomes := make([]*RankOutcome, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r, w := range workers {
		wg.Add(1)
		go func(r int, w *worker) {
			defer wg.Done()
			var done doneMsg
			if err := w.dec.Decode(&done); err != nil {
				errs[r] = fmt.Errorf("mprun: rank %d died without reporting: %w", r, err)
				return
			}
			outcomes[r] = done.Outcome
			if done.Err != "" {
				errs[r] = fmt.Errorf("mprun: rank %d: %s", r, done.Err)
			}
		}(r, w)
	}
	allDone := make(chan struct{})
	go func() { wg.Wait(); close(allDone) }()

	select {
	case <-allDone:
	case <-ctx.Done():
		for _, w := range workers {
			w.send(coordMsg{Cancel: true})
		}
		select {
		case <-allDone:
		case <-time.After(killGrace):
			for _, cmd := range procs {
				if cmd.Process != nil {
					cmd.Process.Kill()
				}
			}
			<-allDone // decoders fail once the processes are dead
		}
	}

	for r, err := range errs {
		if err != nil {
			return outcomes, err
		}
		if outcomes[r] == nil {
			return outcomes, fmt.Errorf("mprun: rank %d reported no outcome", r)
		}
	}
	return outcomes, nil
}

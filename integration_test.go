package fsaicomm

// Large-scale integration tests: the full pipeline at the biggest simulated
// configurations (skipped under -short).

import (
	"testing"
	"time"

	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/partition"
	"fsaicomm/internal/simmpi"
)

func TestLargeScale32Ranks(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale integration skipped in -short")
	}
	a := matgen.Poisson3D(20, 20, 20)
	const ranks = 32
	g := partition.GraphFromMatrix(a)
	part, err := partition.Multilevel(g, ranks, partition.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pa, layout, _ := distmat.ApplyPartition(a, part, ranks)
	b := matgen.RandomRHS(pa.Rows, 5, pa.MaxNorm())

	type outcome struct {
		iters   int
		bytesIt float64
	}
	runCase := func(method core.Method) outcome {
		var out outcome
		world, err := simmpi.Run(ranks, 5*time.Minute, func(c *simmpi.Comm) error {
			lo, hi := layout.Range(c.Rank())
			aRows := distmat.ExtractLocalRows(pa, lo, hi)
			base, err := core.BuildPrecond(c, layout, aRows, core.Config{Method: core.FSAI, LineBytes: 64})
			if err != nil {
				return err
			}
			bd := base
			if method != core.FSAI {
				bd, err = core.BuildPrecond(c, layout, aRows, core.Config{Method: method, LineBytes: 64})
				if err != nil {
					return err
				}
				// The invariance claim must hold at scale.
				if err := core.VerifyCommInvariance(c, base, bd); err != nil {
					return err
				}
			}
			aOp := distmat.NewOp(c, layout, lo, hi, aRows)
			c.Barrier()
			if c.Rank() == 0 {
				c.Meter().Reset()
			}
			c.Barrier()
			x := make([]float64, hi-lo)
			st, err := krylov.DistCG(c, aOp, b[lo:hi], x,
				krylov.NewDistSplit(bd.GOp, bd.GTOp), krylov.Options{MaxIter: 20000}, nil)
			if err != nil {
				return err
			}
			if !st.Converged {
				t.Errorf("%v not converged at 32 ranks", method)
			}
			if c.Rank() == 0 {
				out.iters = st.Iterations
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		out.bytesIt = float64(world.Meter().TotalP2PBytes()) / float64(out.iters)
		return out
	}

	fsai := runCase(core.FSAI)
	comm := runCase(core.FSAIEComm)
	if comm.iters > fsai.iters {
		t.Fatalf("FSAIE-Comm %d iterations above FSAI %d at 32 ranks", comm.iters, fsai.iters)
	}
	if comm.bytesIt != fsai.bytesIt {
		t.Fatalf("per-iteration traffic differs at 32 ranks: %v vs %v", comm.bytesIt, fsai.bytesIt)
	}
}

package fsaicomm

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func residualInf(a *Matrix, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(x, r)
	m := 0.0
	for i := range r {
		d := math.Abs(b[i] - r[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestSolveSerialAllMethods(t *testing.T) {
	a := GeneratePoisson2D(18, 18)
	b := GenerateRHS(a, 1)
	var prevIters int
	for i, m := range []Method{FSAI, FSAIE, FSAIEComm} {
		res, err := Solve(a, b, Options{Method: m, Filter: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%v did not converge", m)
		}
		if r := residualInf(a, res.X, b); r > 1e-4*a.MaxNorm() {
			t.Fatalf("%v residual %g", m, r)
		}
		if i > 0 && res.Iterations > prevIters {
			t.Fatalf("%v iterations %d above previous method %d", m, res.Iterations, prevIters)
		}
		prevIters = res.Iterations
	}
}

func TestSolveDistributedMatchesSerial(t *testing.T) {
	a := GenerateElasticity2D(10, 10, 7)
	b := GenerateRHS(a, 2)
	serial, err := Solve(a, b, Options{Method: FSAIEComm, Filter: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SolveDistributed(a, b, Options{Method: FSAIEComm, Filter: 0.01, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !dist.Converged {
		t.Fatal("distributed solve did not converge")
	}
	if dist.Ranks != 4 {
		t.Fatalf("ranks = %d", dist.Ranks)
	}
	if dist.CommBytes <= 0 {
		t.Fatal("no communication metered")
	}
	// Same solution up to solver tolerance.
	for i := range serial.X {
		if math.Abs(serial.X[i]-dist.X[i]) > 1e-4*(1+math.Abs(serial.X[i])) {
			t.Fatalf("x[%d]: serial %g vs dist %g", i, serial.X[i], dist.X[i])
		}
	}
	if r := residualInf(a, dist.X, b); r > 1e-4*a.MaxNorm() {
		t.Fatalf("distributed residual %g", r)
	}
}

func TestSolveDistributedDefaultRanks(t *testing.T) {
	a := GeneratePoisson2D(30, 30)
	b := GenerateRHS(a, 3)
	res, err := SolveDistributed(a, b, Options{Method: FSAI})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks < 2 {
		t.Fatalf("default ranks = %d", res.Ranks)
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	a := GeneratePoisson2D(4, 4)
	if _, err := Solve(a, make([]float64, 3), Options{}); err == nil {
		t.Fatal("short rhs accepted")
	}
	// Asymmetric matrix.
	c := NewCOO(3, 3)
	c.Add(0, 0, 2)
	c.Add(1, 1, 2)
	c.Add(2, 2, 2)
	c.Add(0, 1, -1)
	bad := c.ToCSR()
	if _, err := Solve(bad, make([]float64, 3), Options{}); err == nil {
		t.Fatal("asymmetric matrix accepted")
	} else if !strings.Contains(err.Error(), "symmetric") {
		t.Fatalf("unexpected error: %v", err)
	}
	rect := NewCOO(2, 3)
	if _, err := Solve(rect.ToCSR(), make([]float64, 2), Options{}); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
}

// TestSolveRejectsNonFinite: a NaN or Inf anywhere in the matrix or the
// right-hand side is an input error surfaced as ErrInvalidOptions before
// any factorization or caching happens — not a breakdown half-way through.
func TestSolveRejectsNonFinite(t *testing.T) {
	a := GeneratePoisson2D(4, 4)
	b := GenerateRHS(a, 1)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		rhs := append([]float64(nil), b...)
		rhs[5] = bad
		if _, err := Solve(a, rhs, Options{}); !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("serial rhs %v: %v", bad, err)
		}
		if _, err := SolveDistributed(a, rhs, Options{Ranks: 2}); !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("distributed rhs %v: %v", bad, err)
		}
	}
	aa := a.Clone()
	aa.Val[0] = math.NaN()
	if _, err := Solve(aa, b, Options{}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("NaN matrix solve: %v", err)
	}
	if _, err := Prepare(aa, Options{Ranks: 2}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("NaN matrix prepare: %v", err)
	}
	if _, err := BuildPreconditioner(aa, Options{}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("NaN matrix preconditioner: %v", err)
	}
}

func TestMatrixMarketRoundTripFacade(t *testing.T) {
	a := GeneratePoisson2D(5, 5)
	var sb strings.Builder
	if err := WriteMatrixMarket(&sb, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != a.NNZ() {
		t.Fatal("round trip changed nnz")
	}
}

func TestDynamicStrategyOption(t *testing.T) {
	a := GenerateElasticity2D(9, 9, 4)
	b := GenerateRHS(a, 5)
	res, err := SolveDistributed(a, b, Options{
		Method: FSAIEComm, Filter: 0.01, Strategy: DynamicFilter, Ranks: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.ImbalanceIndex <= 0 || res.ImbalanceIndex > 1 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestArchProfilesExported(t *testing.T) {
	if Skylake.LineBytes != 64 || A64FX.LineBytes != 256 || Zen2.LineBytes != 64 {
		t.Fatal("exported profiles wrong")
	}
}

func TestPatternLevelOption(t *testing.T) {
	a := GeneratePoisson2D(14, 14)
	b := GenerateRHS(a, 9)
	l1, err := Solve(a, b, Options{Method: FSAI})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Solve(a, b, Options{Method: FSAI, PatternLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if l2.Iterations >= l1.Iterations {
		t.Fatalf("level-2 base pattern (%d iters) not better than level-1 (%d)", l2.Iterations, l1.Iterations)
	}
	// Distributed path accepts the option too.
	d2, err := SolveDistributed(a, b, Options{Method: FSAIEComm, PatternLevel: 2, Filter: 0.01, Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Converged {
		t.Fatal("distributed level-2 solve did not converge")
	}
}

func TestPreconditionerReuse(t *testing.T) {
	a := GeneratePoisson2D(15, 15)
	p, err := BuildPreconditioner(a, Options{Method: FSAIEComm, Filter: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if p.Method() != FSAIEComm || p.PctNNZIncrease() <= 0 {
		t.Fatalf("metadata wrong: %v %v", p.Method(), p.PctNNZIncrease())
	}
	// Solve three different systems with the same factor.
	for seed := int64(1); seed <= 3; seed++ {
		b := GenerateRHS(a, seed)
		res, err := p.SolveWith(b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: not converged", seed)
		}
		if r := residualInf(a, res.X, b); r > 1e-4*a.MaxNorm() {
			t.Fatalf("seed %d: residual %g", seed, r)
		}
	}
	// Apply is the GᵀG action: z must differ from r and be finite.
	r := GenerateRHS(a, 9)
	z := make([]float64, a.Rows)
	p.Apply(r, z)
	same := true
	for i := range z {
		if z[i] != r[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Apply was a no-op")
	}
	if p.Factor() == nil || p.Pattern().NNZ() == 0 {
		t.Fatal("factor inspection broken")
	}
	if p.SetupTime() <= 0 {
		t.Fatal("setup time not recorded")
	}
}

func TestPreconditionerRejectsBadInput(t *testing.T) {
	c := NewCOO(2, 3)
	if _, err := BuildPreconditioner(c.ToCSR(), Options{}); err == nil {
		t.Fatal("rectangular accepted")
	}
	a := GeneratePoisson2D(4, 4)
	p, err := BuildPreconditioner(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SolveWith(make([]float64, 3), Options{}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestReorderingFacade(t *testing.T) {
	a := GeneratePoisson2D(6, 6)
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	b := PermuteSym(a, perm)
	if Bandwidth(b) > Bandwidth(a) {
		t.Fatalf("RCM increased bandwidth: %d > %d", Bandwidth(b), Bandwidth(a))
	}
	if b.NNZ() != a.NNZ() {
		t.Fatal("permutation changed nnz")
	}
}

func TestPartitionerOption(t *testing.T) {
	a := GeneratePoisson2D(16, 16)
	b := GenerateRHS(a, 4)
	var commBytes []int64
	for _, p := range []string{"multilevel", "block", "strip"} {
		res, err := SolveDistributed(a, b, Options{Method: FSAI, Ranks: 4, Partitioner: p})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !res.Converged {
			t.Fatalf("%s: not converged", p)
		}
		commBytes = append(commBytes, res.CommBytes)
	}
	// Strip (round-robin) must cost far more communication than multilevel.
	if commBytes[2] < 3*commBytes[0] {
		t.Fatalf("strip comm %d not far above multilevel %d", commBytes[2], commBytes[0])
	}
	if _, err := SolveDistributed(a, b, Options{Partitioner: "bogus"}); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
}

// The observability surface of the facade: opt-in per-iteration traces, the
// per-window modeled-time breakdown reconciling exactly with
// ModeledSolveTime, and the pipelined residual-replacement knob.
func TestSolveTelemetryFacade(t *testing.T) {
	a := GeneratePoisson2D(16, 16)
	b := GenerateRHS(a, 1)

	res, err := SolveDistributed(a, b, Options{Method: FSAIEComm, Filter: 0.01, Ranks: 4, Trace: true})
	if err != nil || !res.Converged {
		t.Fatalf("traced distributed solve: %+v, %v", res, err)
	}
	if res.Trace == nil || res.Trace.Rank != 0 || len(res.Trace.Iters) != res.Iterations {
		t.Fatalf("trace missing or wrong shape: %+v", res.Trace)
	}
	if tot := res.Trace.Total(); tot.CollectiveCalls <= 0 || tot.P2PBytes <= 0 {
		t.Fatalf("trace totals empty: %+v", tot)
	}
	if res.Phases.TotalSec != res.ModeledSolveTime {
		t.Fatalf("Phases.TotalSec %g != ModeledSolveTime %g", res.Phases.TotalSec, res.ModeledSolveTime)
	}
	names := map[string]bool{}
	for _, w := range res.Phases.Windows {
		names[w.Name] = true
	}
	if !names["halo"] || !names["reduction"] {
		t.Fatalf("phase windows missing: %+v", res.Phases.Windows)
	}

	plain, err := SolveDistributed(a, b, Options{Method: FSAIEComm, Filter: 0.01, Ranks: 4})
	if err != nil || plain.Trace != nil {
		t.Fatalf("untraced solve carries trace: %+v, %v", plain.Trace, err)
	}
	for i := range plain.X {
		if plain.X[i] != res.X[i] {
			t.Fatalf("tracing changed x[%d]: %v vs %v", i, plain.X[i], res.X[i])
		}
	}

	ser, err := Solve(a, b, Options{Method: FSAI, Trace: true})
	if err != nil || ser.Trace == nil || len(ser.Trace.Iters) != ser.Iterations {
		t.Fatalf("serial trace missing: %+v, %v", ser.Trace, err)
	}

	rr, err := SolveDistributed(a, b, Options{Method: FSAIEComm, Filter: 0.01, Ranks: 4,
		CGVariant: CGPipelined, ResidualReplaceEvery: 10})
	if err != nil || !rr.Converged {
		t.Fatalf("pipelined solve with residual replacement: %+v, %v", rr, err)
	}
}

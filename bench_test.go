package fsaicomm

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (each regenerates the corresponding rows/series on the quick
// catalog subset and reports the headline aggregate as a custom metric),
// plus microbenchmarks of the individual kernels. The full 39-matrix
// campaign is driven by cmd/fsaibench; EXPERIMENTS.md records paper-vs-
// measured numbers for both.

import (
	"context"
	"io"
	"testing"
	"time"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/cache"
	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/experiments"
	"fsaicomm/internal/fsai"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/partition"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
	"fsaicomm/internal/vecops"
)

// quick returns the class-representative subset used by the benches.
func quick() []testsets.Spec { return testsets.QuickSet() }

func newRunner(arch archmodel.Profile) *experiments.Runner {
	return experiments.NewRunner(arch)
}

// avgTimeImp runs the FSAIE-Comm dynamic grid and returns the best-filter
// average time improvement, the headline number of Tables 3/5/6/7.
func avgTimeImp(b *testing.B, r *experiments.Runner, set []testsets.Spec) float64 {
	rows, err := experiments.FilterGrid(r, set, core.FSAIEComm, core.DynamicFilter, experiments.PaperFilters)
	if err != nil {
		b.Fatal(err)
	}
	return rows[len(rows)-1].AvgTimeImp
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(archmodel.Skylake)
		if err := experiments.Table1(io.Discard, r, quick(), 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	set := testsets.Table2()[:3]
	for i := 0; i < b.N; i++ {
		r := newRunner(archmodel.Zen2)
		r.RanksOf = testsets.LargeRanks
		if err := experiments.Table1(io.Discard, r, set, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		imp = avgTimeImp(b, newRunner(archmodel.Skylake), quick())
	}
	b.ReportMetric(imp, "avg-time-imp-%")
}

func BenchmarkTable4(b *testing.B) {
	set := quick()[:3]
	var rows []experiments.HybridRow
	for i := 0; i < b.N; i++ {
		mk := func(cores int) *experiments.Runner {
			r := newRunner(archmodel.Skylake.WithCoresPerProcess(cores))
			r.RanksOf = func(nnz int) int {
				return testsets.RanksFor(nnz, 2048*cores, 1, 16)
			}
			return r
		}
		var err error
		rows, err = experiments.Hybrid(mk, set, []int{1, 8, 48})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].TimeDecC, "48c-time-dec-%")
}

func BenchmarkTable5(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		imp = avgTimeImp(b, newRunner(archmodel.A64FX), quick())
	}
	b.ReportMetric(imp, "avg-time-imp-%")
}

func BenchmarkTable6(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		imp = avgTimeImp(b, newRunner(archmodel.Zen2), quick())
	}
	b.ReportMetric(imp, "avg-time-imp-%")
}

func BenchmarkTable7(b *testing.B) {
	set := testsets.Table2()[:3]
	var imp float64
	for i := 0; i < b.N; i++ {
		r := newRunner(archmodel.Zen2)
		r.RanksOf = testsets.LargeRanks
		imp = avgTimeImp(b, r, set)
	}
	b.ReportMetric(imp, "avg-time-imp-%")
}

func benchPerMatrixFigure(b *testing.B, arch archmodel.Profile, fixed float64) {
	var avg float64
	for i := 0; i < b.N; i++ {
		r := newRunner(arch)
		best, _, err := experiments.PerMatrixTimeDecrease(r, quick(), fixed)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, p := range best {
			sum += p.Value
		}
		avg = sum / float64(len(best))
	}
	b.ReportMetric(avg, "avg-best-time-dec-%")
}

func BenchmarkFigure2(b *testing.B) { benchPerMatrixFigure(b, archmodel.Skylake, 0.01) }
func BenchmarkFigure4(b *testing.B) { benchPerMatrixFigure(b, archmodel.A64FX, 0.05) }
func BenchmarkFigure6(b *testing.B) { benchPerMatrixFigure(b, archmodel.Zen2, 0.05) }

func BenchmarkFigure8(b *testing.B) {
	set := testsets.Table2()[:3]
	var avg float64
	for i := 0; i < b.N; i++ {
		r := newRunner(archmodel.Zen2)
		r.RanksOf = testsets.LargeRanks
		best, _, err := experiments.PerMatrixTimeDecrease(r, set, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, p := range best {
			sum += p.Value
		}
		avg = sum / float64(len(best))
	}
	b.ReportMetric(avg, "avg-best-time-dec-%")
}

func benchHistogram(b *testing.B, arch archmodel.Profile, metric string) {
	var baseAvg, extAvg float64
	for i := 0; i < b.N; i++ {
		r := newRunner(arch)
		base, ext, err := experiments.HistogramSeries(r, quick(), metric)
		if err != nil {
			b.Fatal(err)
		}
		baseAvg, extAvg = 0, 0
		for k := range base {
			baseAvg += base[k].Value
			extAvg += ext[k].Value
		}
		baseAvg /= float64(len(base))
		extAvg /= float64(len(ext))
	}
	b.ReportMetric(baseAvg, "fsai-avg")
	b.ReportMetric(extAvg, "fsaiecomm-avg")
}

func BenchmarkFigure3aMisses(b *testing.B) { benchHistogram(b, archmodel.Skylake, "misses") }
func BenchmarkFigure3bGFlops(b *testing.B) { benchHistogram(b, archmodel.Skylake, "gflops") }
func BenchmarkFigure5aMisses(b *testing.B) { benchHistogram(b, archmodel.A64FX, "misses") }
func BenchmarkFigure5bGFlops(b *testing.B) { benchHistogram(b, archmodel.A64FX, "gflops") }
func BenchmarkFigure7GFlops(b *testing.B)  { benchHistogram(b, archmodel.Zen2, "gflops") }

func BenchmarkImbalanceStudy(b *testing.B) {
	spec, err := testsets.ByName("consph-sim")
	if err != nil {
		b.Fatal(err)
	}
	var study experiments.ImbalanceStudy
	for i := 0; i < b.N; i++ {
		r := newRunner(archmodel.Skylake)
		study, err = experiments.RunImbalanceStudy(r, spec, 0.01)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(study.DynamicIndex, "dynamic-imb-index")
}

// ---- Kernel microbenchmarks ----

func BenchmarkSpMVPoisson3D(b *testing.B) {
	a := matgen.Poisson3D(24, 24, 24)
	x := make([]float64, a.Rows)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.SetBytes(int64(12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x, y)
	}
}

func BenchmarkFSAIBuild(b *testing.B) {
	a := matgen.Poisson2D(48, 48)
	s := fsai.LowerPattern(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fsai.Build(a, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFSAIBuildExtended256(b *testing.B) {
	a := matgen.Poisson2D(48, 48)
	s := fsai.LowerPattern(a)
	ext, err := core.ExtendPatternSerial(s, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fsai.Build(a, ext); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtendPattern64(b *testing.B) {
	a := matgen.Elasticity2D(30, 30, 1)
	s := fsai.LowerPattern(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExtendPatternSerial(s, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtendPattern256(b *testing.B) {
	a := matgen.Elasticity2D(30, 30, 1)
	s := fsai.LowerPattern(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExtendPatternSerial(s, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialPCGSolve(b *testing.B) {
	a := matgen.Poisson2D(40, 40)
	rhs := matgen.RandomRHS(a.Rows, 1, a.MaxNorm())
	g, err := fsai.Build(a, fsai.LowerPattern(a))
	if err != nil {
		b.Fatal(err)
	}
	pre := krylov.NewSplit(g, g.Transpose())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, a.Rows)
		if _, err := krylov.CG(a, rhs, x, pre, krylov.Options{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedSolve8Ranks(b *testing.B) {
	a := GeneratePoisson3D(16, 16, 16)
	rhs := GenerateRHS(a, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveDistributed(a, rhs, Options{Method: FSAIEComm, Filter: 0.01, Ranks: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultilevelPartition(b *testing.B) {
	a := matgen.Poisson2D(64, 64)
	g := partition.GraphFromMatrix(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Multilevel(g, 8, partition.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheTracePrecond(b *testing.B) {
	a := matgen.Poisson2D(48, 48)
	g, err := fsai.Build(a, fsai.LowerPattern(a))
	if err != nil {
		b.Fatal(err)
	}
	gt := g.Transpose()
	sim := cache.MustNew(32*1024, 64, 8)
	b.SetBytes(int64(8 * (g.NNZ() + gt.NNZ())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.TracePrecondProduct(g, gt, sim)
	}
}

func BenchmarkHaloExchange(b *testing.B) {
	// Measures one distributed SpMV (halo update + local product) amortized
	// inside a CG solve over the simulated runtime.
	a := matgen.Poisson2D(48, 48)
	n := a.Rows
	layout := distmat.NewUniformLayout(n, 4)
	_ = layout
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SolveDistributed(a, x, Options{Method: FSAI, Ranks: 4, MaxIter: 50, Tol: 1e-30})
		_ = res
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveSetup contrasts the setup cost of a dynamic-pattern
// (FSPAI-style) factor with the static FSAIE extension pipeline — the
// trade-off the paper's related-work section argues motivates static
// cache-aware patterns.
func BenchmarkAdaptiveSetup(b *testing.B) {
	a := matgen.Poisson2D(40, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fsai.BuildAdaptive(a, fsai.AdaptiveOptions{Steps: 4, AddPerStep: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticExtendedSetup is the static counterpart of
// BenchmarkAdaptiveSetup: extension + two-pass filtered build.
func BenchmarkStaticExtendedSetup(b *testing.B) {
	a := matgen.Poisson2D(40, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.BuildSerial(a, core.FSAIEComm, 0.01, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIC0Setup measures the classical incomplete-Cholesky baseline.
func BenchmarkIC0Setup(b *testing.B) {
	a := matgen.Poisson2D(40, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := krylov.NewIC0(a); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Serial vs. parallel kernel benchmarks ----
//
// The pairs below pin the worker-pool speedup on a ~50k-row problem
// (Poisson3D 37³ = 50653 rows): run with -cpu to sweep GOMAXPROCS. The
// Workers1 variants are the serial baselines; the Parallel variants use
// Workers = GOMAXPROCS. Outputs are bit-identical by construction, so the
// only difference the pool may make is the ns/op column.

func benchBuildWorkers(b *testing.B, workers int) {
	a := matgen.Poisson3D(37, 37, 37)
	s := fsai.LowerPattern(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fsai.BuildWorkers(a, s, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFSAIBuild50kWorkers1(b *testing.B) { benchBuildWorkers(b, 1) }
func BenchmarkFSAIBuild50kParallel(b *testing.B) { benchBuildWorkers(b, 0) }

func benchSpMV50k(b *testing.B, workers int) {
	a := matgen.Poisson3D(37, 37, 37)
	x := make([]float64, a.Rows)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.SetBytes(int64(12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecParallel(x, y, workers)
	}
}

func BenchmarkSpMV50kWorkers1(b *testing.B) { benchSpMV50k(b, 1) }
func BenchmarkSpMV50kParallel(b *testing.B) { benchSpMV50k(b, 0) }

func benchPatternPower(b *testing.B, workers int) {
	a := matgen.Poisson3D(37, 37, 37)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.PatternPowerWorkers(a, 2, workers)
	}
}

func BenchmarkPatternPower50kWorkers1(b *testing.B) { benchPatternPower(b, 1) }
func BenchmarkPatternPower50kParallel(b *testing.B) { benchPatternPower(b, 0) }

// ---- Communication-variant benchmarks ----
//
// Classic vs fused distributed CG and blocking vs overlapped SpMV on the
// same ~50k-row Poisson3D case, 4 ranks. The fused loop trades three
// per-iteration reductions for one and merges the vector updates into
// single-pass kernels; the overlap SpMV posts halo sends before computing
// interior rows. Names contain "50k" so `make bench` picks them up.

func benchDistCG50k(b *testing.B, variant CGVariant) {
	a := matgen.Poisson3D(37, 37, 37)
	rhs := matgen.RandomRHS(a.Rows, 3, a.MaxNorm())
	b.ResetTimer()
	var modeled float64
	for i := 0; i < b.N; i++ {
		res, err := SolveDistributed(a, rhs, Options{
			Method: FSAI, Ranks: 4, Tol: 1e-6, CGVariant: variant, Partitioner: "block",
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("not converged")
		}
		modeled = res.ModeledSolveTime
	}
	// The serialized simulated runtime cannot show overlap in ns/op; the
	// overlap-credit cost model can (DESIGN.md §4d).
	b.ReportMetric(modeled*1e3, "modeled-ms/solve")
}

func BenchmarkDistCG50kClassic(b *testing.B)   { benchDistCG50k(b, CGClassic) }
func BenchmarkDistCG50kOverlap(b *testing.B)   { benchDistCG50k(b, CGClassicOverlap) }
func BenchmarkDistCG50kFused(b *testing.B)     { benchDistCG50k(b, CGFused) }
func BenchmarkDistCG50kPipelined(b *testing.B) { benchDistCG50k(b, CGPipelined) }

func benchDistSpMV50k(b *testing.B, overlap bool) {
	a := matgen.Poisson3D(37, 37, 37)
	n := a.Rows
	const nranks = 4
	l := distmat.NewUniformLayout(n, nranks)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.SetBytes(int64(12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := simmpi.Run(nranks, time.Hour, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi), distmat.WithOverlap())
			scratch := distmat.NewDistVec(op.LZ)
			y := make([]float64, hi-lo)
			// Amortize plan construction over many products, like a solve.
			for k := 0; k < 32; k++ {
				if overlap {
					op.Overlap().MulVecOverlap(c, x[lo:hi], y, scratch, nil)
				} else {
					op.MulVec(c, x[lo:hi], y, scratch, nil)
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistSpMV50kBlocking(b *testing.B) { benchDistSpMV50k(b, false) }
func BenchmarkDistSpMV50kOverlap(b *testing.B)  { benchDistSpMV50k(b, true) }

// ---- Batched multi-RHS benchmarks ----
//
// SpMM vs k independent SpMVs, and the batched prepared solve vs a loop of
// scalar solves, on the same ~50k-row Poisson3D case. The SpMM kernel
// streams the matrix once for all k columns where the SpMV loop reads it k
// times, and the batched solve pays one k-wide halo/reduction schedule
// where the loop pays k narrow ones. Names contain "50k" so `make bench`
// picks them up.

func benchSpMMvsLoop(b *testing.B, k int, batched bool) {
	a := matgen.Poisson3D(37, 37, 37)
	n := a.Rows
	x := make([]float64, n*k)
	y := make([]float64, n*k)
	for i := range x {
		x[i] = float64(i % 7)
	}
	xc := make([]float64, n)
	yc := make([]float64, n)
	b.SetBytes(int64(k * 12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			a.MulMat(x, y, k)
		} else {
			for c := 0; c < k; c++ {
				vecops.UnpackColumn(xc, x, k, c)
				a.MulVec(xc, yc)
				vecops.PackColumn(y, yc, k, c)
			}
		}
	}
}

func BenchmarkSpMM50kx4(b *testing.B)  { benchSpMMvsLoop(b, 4, true) }
func BenchmarkSpMV50kx4(b *testing.B)  { benchSpMMvsLoop(b, 4, false) }
func BenchmarkSpMM50kx16(b *testing.B) { benchSpMMvsLoop(b, 16, true) }
func BenchmarkSpMV50kx16(b *testing.B) { benchSpMMvsLoop(b, 16, false) }

func benchSolveBatch50k(b *testing.B, batched bool) {
	const k = 8
	a := matgen.Poisson3D(37, 37, 37)
	p, err := Prepare(a, Options{Method: FSAI, Ranks: 4, Partitioner: "block"})
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([][]float64, k)
	for c := range rhs {
		rhs[c] = matgen.RandomRHS(a.Rows, int64(11+c), a.MaxNorm())
	}
	so := SolveOptions{CGVariant: CGClassic}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			br, err := p.SolveBatch(ctx, rhs, so)
			if err != nil {
				b.Fatal(err)
			}
			if !br.AllConverged() {
				b.Fatal("not converged")
			}
		} else {
			for c := range rhs {
				res, err := p.Solve(ctx, rhs[c], so)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("not converged")
				}
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/rhs")
}

func BenchmarkPreparedSolveBatch50k(b *testing.B)  { benchSolveBatch50k(b, true) }
func BenchmarkPreparedSolveLooped50k(b *testing.B) { benchSolveBatch50k(b, false) }

// BenchmarkSpMVSymmetric measures the half-storage symmetric kernel against
// BenchmarkSpMVPoisson3D's full-CSR baseline (same matrix).
func BenchmarkSpMVSymmetric(b *testing.B) {
	a := matgen.Poisson3D(24, 24, 24)
	s, err := sparse.NewSymCSR(a)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, a.Rows)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.SetBytes(int64(12 * s.NNZStored()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MulVec(x, y)
	}
}

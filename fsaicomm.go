// Package fsaicomm is a from-scratch Go implementation of the
// Communication-aware Factorized Sparse Approximate Inverse preconditioner
// (FSAIE-Comm) of Laut, Casas and Borrell (HPDC '22), together with the
// FSAI and FSAIE baselines, a distributed Conjugate Gradient solver over a
// simulated message-passing runtime, and the infrastructure used to
// reproduce the paper's evaluation.
//
// The package exposes two entry points:
//
//   - Solve runs a preconditioned CG solve on a single process (the
//     shared-memory case, where FSAIE and FSAIE-Comm coincide).
//   - SolveDistributed distributes the matrix over a simulated cluster of
//     message-passing ranks (goroutines), builds the selected
//     preconditioner variant with communication-aware pattern extension and
//     optional dynamic load-balancing filter, runs distributed CG, and
//     reports iteration counts and metered communication volumes.
//
// Matrices are CSR (see NewCOO / ReadMatrixMarket to build them). All
// lower-level machinery lives in internal/ packages; cmd/fsaibench drives
// the full paper reproduction.
package fsaicomm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/experiments"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/mprun"
	"fsaicomm/internal/partition"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
)

// Matrix is a sparse matrix in CSR form.
type Matrix = sparse.CSR

// COO is a coordinate-format builder for matrices.
type COO = sparse.COO

// NewCOO returns an empty coordinate builder with the given shape.
func NewCOO(rows, cols int) *COO { return sparse.NewCOO(rows, cols) }

// ReadMatrixMarket parses a Matrix Market stream ("coordinate real
// general|symmetric") into a Matrix.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return sparse.ReadMatrixMarket(r) }

// WriteMatrixMarket writes a matrix in Matrix Market coordinate form.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return sparse.WriteMatrixMarket(w, m) }

// Method selects the preconditioner variant.
type Method = core.Method

// Preconditioner variants, in the order the paper evaluates them.
const (
	// FSAI is the baseline factorized sparse approximate inverse on the
	// lower-triangular pattern of A.
	FSAI = core.FSAI
	// FSAIE adds cache-friendly local pattern extension.
	FSAIE = core.FSAIE
	// FSAIEComm adds communication-aware halo extension (the paper's
	// contribution).
	FSAIEComm = core.FSAIEComm
	// SPAI is the adaptive Grote–Huckle sparse approximate inverse: an
	// explicit right inverse M ≈ A⁻¹ for general (nonsymmetric) matrices,
	// applied inside restarted GMRES rather than CG. Requires Solver
	// SolverGMRES.
	SPAI = core.SPAI
)

// FilterStrategy selects static (same Filter everywhere) or dynamic
// (per-process bisection, Algorithm 4) filtering.
type FilterStrategy = core.FilterStrategy

// Filtering strategies.
const (
	StaticFilter  = core.StaticFilter
	DynamicFilter = core.DynamicFilter
)

// CGVariant selects the communication structure of the distributed CG loop.
type CGVariant = krylov.CGVariant

// Distributed CG variants.
const (
	// CGClassic is the textbook loop: three reductions per iteration.
	CGClassic = krylov.CGClassic
	// CGClassicOverlap is the classic recurrence with the overlapped halo
	// SpMV schedule (bit-identical results).
	CGClassicOverlap = krylov.CGClassicOverlap
	// CGFused is the fused-reduction (Chronopoulos–Gear) loop: one batched
	// Allreduce per iteration.
	CGFused = krylov.CGFused
	// CGPipelined is the pipelined (Ghysels–Vanroose) loop: one nonblocking
	// Allreduce per iteration, overlapped with the next SpMV and
	// preconditioner application.
	CGPipelined = krylov.CGPipelined
)

// ParseCGVariant parses "classic", "classic-overlap", "fused" or
// "pipelined" (the -cg flag spellings of the command-line tools).
func ParseCGVariant(s string) (CGVariant, error) { return krylov.ParseCGVariant(s) }

// Solver selects the Krylov loop of a solve.
type Solver = krylov.Solver

// Krylov solvers.
const (
	// SolverCG is preconditioned conjugate gradients — the default, valid
	// for the symmetric positive definite systems of the FSAI family.
	SolverCG = krylov.SolverCG
	// SolverGMRES is restarted GMRES with modified Gram–Schmidt, valid for
	// general square systems. Pairs with Method SPAI (the right inverse is
	// the preconditioner GMRES applies).
	SolverGMRES = krylov.SolverGMRES
)

// ParseSolver parses the -solver flag spellings "cg" and "gmres" (empty
// string = cg).
func ParseSolver(s string) (Solver, error) { return krylov.ParseSolver(s) }

// Precision selects the value width of the preconditioner factors and the
// operator inside the solve (see Options.Precision).
type Precision = krylov.Precision

// Solve precisions.
const (
	// FP64 is full double precision throughout — the default.
	FP64 = krylov.FP64
	// FP32 stores the factor (and operator) values in float32 and wraps the
	// CG loop in an FP64 iterative-refinement outer loop: halo traffic
	// halves while the refinement recovers the FP64 residual target.
	FP32 = krylov.FP32
)

// ParsePrecision parses the -precision flag spellings "fp64" and "fp32"
// (empty string = fp64).
func ParsePrecision(s string) (Precision, error) { return krylov.ParsePrecision(s) }

// ParseMethod parses the -method flag spellings: "fsai", "fsaie",
// "fsaie-comm" (also accepted: "fsaiecomm") or "spai", case-insensitively.
// The empty string means "caller did not say" and resolves to FSAIEComm, the
// default the command-line tools and the serving layer's request decoder
// share.
func ParseMethod(s string) (Method, error) {
	switch strings.ToLower(s) {
	case "":
		return FSAIEComm, nil
	case "fsai":
		return FSAI, nil
	case "fsaie":
		return FSAIE, nil
	case "fsaie-comm", "fsaiecomm":
		return FSAIEComm, nil
	case "spai":
		return SPAI, nil
	default:
		return FSAI, fmt.Errorf("fsaicomm: unknown method %q (want fsai, fsaie, fsaie-comm or spai)", s)
	}
}

// IterTrace is one rank's per-iteration solver telemetry (relative
// residual, α/β, communication deltas), recorded when Options.Trace is set.
type IterTrace = krylov.IterTrace

// IterRecord is one iteration's telemetry row.
type IterRecord = krylov.IterRecord

// CommDelta is a rank's communication traffic between two trace points.
type CommDelta = krylov.CommDelta

// OverlapReport is the per-window breakdown of the modeled solve time:
// compute, always-exposed communication, and per-window raw / hidden /
// exposed seconds under the overlap-credit model.
type OverlapReport = archmodel.OverlapReport

// WindowReport is one communication window's share of an OverlapReport.
type WindowReport = archmodel.WindowReport

// Options configures a solve.
type Options struct {
	// Method selects FSAI, FSAIE, FSAIEComm or SPAI. The zero value is FSAI;
	// ParseMethod("") resolves the command-line default FSAIEComm. SPAI is
	// the nonsymmetric axis and requires Solver SolverGMRES (and vice versa —
	// Validate enforces the coupling both ways).
	Method Method
	// Solver selects the Krylov loop: SolverCG (default; the FSAI family)
	// or SolverGMRES (restarted GMRES, required by and requiring Method
	// SPAI). GMRES runs the classic blocking schedule in FP64 only.
	Solver Solver
	// Restart is the GMRES restart length m (cycle length of the rebuilt
	// Krylov basis). Zero selects 30. Ignored by the CG solvers.
	Restart int
	// SPAISteps, SPAIAdd and SPAIEpsilon shape the adaptive SPAI build
	// (Method SPAI only): SPAISteps rounds of pattern enrichment adding at
	// most SPAIAdd entries per column per round, stopping a column once its
	// least-squares residual drops below SPAIEpsilon (0 selects 0.4; the
	// static pattern is SPAISteps 0). PatternLevel doubles as the SPAI base
	// pattern level: the pattern of (structure(A)+I)^level.
	SPAISteps   int
	SPAIAdd     int
	SPAIEpsilon float64
	// Filter is the initial Filter value for the post-extension filtering
	// (paper sweeps 0.01–0.2). Zero keeps every extension entry.
	Filter float64
	// Strategy selects static or dynamic filtering. Default static.
	Strategy FilterStrategy
	// LineBytes is the cache-line size steering the extension (64 for
	// Skylake/Zen 2, 256 for A64FX). Default 64.
	LineBytes int
	// Tol is the relative residual target. Default 1e-8 (the paper's
	// convergence criterion).
	Tol float64
	// MaxIter caps CG iterations. Default 10·n.
	MaxIter int
	// Ranks is the number of simulated processes for SolveDistributed.
	// Default chosen from the matrix size (≈16k entries per rank, 2..12).
	Ranks int
	// PatternLevel selects the base sparse pattern: 1 (default) is the
	// lower triangle of A; N > 1 uses the lower triangle of pattern(Ã^N),
	// the paper's "sparse level". Threshold is the tau dropping small
	// entries when forming Ã (0 keeps all).
	PatternLevel int
	Threshold    float64
	// PartitionSeed seeds the multilevel partitioner. Deterministic per
	// seed.
	PartitionSeed int64
	// Partitioner selects the row distribution for SolveDistributed:
	// "multilevel" (default; METIS-like recursive bisection), "block"
	// (contiguous equal row counts) or "strip" (round-robin; worst-case
	// halo, useful to stress-test communication).
	Partitioner string
	// Workers bounds the shared-memory worker pool for the row-parallel
	// preconditioner setup. For Solve, ≤ 0 means GOMAXPROCS. For
	// SolveDistributed, ≤ 0 means 1 worker per simulated rank (the ranks
	// themselves already run concurrently); set it explicitly to model the
	// paper's MPI×OpenMP hybrid.
	Workers int
	// CGVariant selects the distributed CG loop: CGClassic (default; three
	// reductions per iteration, blocking SpMV), CGClassicOverlap (classic
	// recurrence, overlapped halo SpMV), CGFused (one batched Allreduce per
	// iteration, overlapped SpMV, fused kernels) or CGPipelined (one
	// nonblocking Allreduce per iteration, hidden behind the next SpMV and
	// preconditioner application). Serial Solve ignores it. See
	// ParseCGVariant for the flag spellings.
	CGVariant CGVariant
	// Arch names the architecture profile for Result.ModeledSolveTime:
	// "skylake" (default), "a64fx" or "zen2". It only parameterizes the
	// cost model; LineBytes independently steers the pattern extension.
	Arch string
	// Trace records per-iteration solver telemetry into Result.Trace
	// (rank 0's view in distributed solves). Off by default; when off the
	// solve does no telemetry work.
	Trace bool
	// ResidualReplaceEvery > 0 makes the pipelined CG loop recompute the
	// true residual r = b − A·x every that-many iterations, arresting the
	// rounding drift of the pipelined recurrence on ill-conditioned
	// instances at the price of extra halo traffic (no extra collectives).
	// Zero disables replacement; other CG variants ignore it.
	ResidualReplaceEvery int
	// Transport selects the rank runtime for SolveDistributed: "sim" (the
	// default; in-process goroutine ranks over metered channels) or "tcp"
	// (one OS process per rank over a loopback TCP mesh, spawned by
	// re-executing the current binary — its main or TestMain must call
	// mprun.MaybeWorker, which cmd binaries and the facade tests do). Both
	// backends run the identical rank job and produce bit-identical results
	// and meters; "tcp" pays real process and socket overheads. Serial Solve
	// ignores it.
	Transport string
	// Nodes and RanksPerNode declare a two-level topology over the ranks:
	// Nodes contiguous blocks of RanksPerNode ranks each (mpirun's block
	// mapping). Setting either (the other is derived; both must multiply to
	// the rank count) splits the communication meters into intra-node vs
	// inter-node traffic and switches the halo exchange to node-aware
	// aggregation: cross-node values are combined into one message per node
	// pair through per-node leader ranks, collapsing the inter-node message
	// count from per-rank-pair to per-node-pair with bit-identical received
	// values. Zero/zero (the default) is the historical flat world — every
	// rank its own node, all point-to-point traffic counted inter-node.
	Nodes int
	// RanksPerNode is the number of ranks per node (see Nodes).
	RanksPerNode int
	// NoNodeAggregation keeps the flat per-rank halo schedule under a
	// declared topology: the meters still split intra vs inter traffic but
	// nothing is aggregated. This is the baseline the node-aware benchmarks
	// compare against; it has no effect on a flat topology.
	NoNodeAggregation bool
	// Precision selects the solve's value width: FP64 (default) or FP32.
	// Under FP32 the factors are still built in float64 and then narrowed to
	// float32 — together with a float32 view of A — and the CG loop runs as
	// the inner solve of an FP64 iterative-refinement outer loop: halo bytes
	// drop ~2×, the outer loop recomputes the true FP64 residual each step,
	// and the solve reaches the same Tol as pure FP64 (typically within a
	// small iteration overhead; Result.Refinements counts the outer steps).
	// Tolerances much below ~1e-13 can sit under the float32 representation
	// floor — the refinement then stops early and reports no convergence.
	// This is a SETUP-level knob: it changes the prepared factors, so it
	// lives here and not in SolveOptions, and is part of the serving layer's
	// preconditioner cache key.
	Precision Precision
}

// ErrInvalidOptions is wrapped by the errors Validate returns for
// nonsensical option values, so callers (and the HTTP layer, which maps it
// to a 400 response) can classify them with errors.Is.
var ErrInvalidOptions = errors.New("fsaicomm: invalid options")

// Validate rejects nonsensical option combinations with a descriptive
// error instead of silently clamping them. It is the single validator
// shared by every facade entry point (Solve, SolveDistributed, Prepare,
// BuildPreconditioner) and by the fsaiserve request decoder. Zero values
// always pass: they mean "use the default". Negative tolerances, iteration
// caps, rank counts, filters and pattern levels, unknown methods,
// strategies, partitioners and architecture profiles all fail.
func (o Options) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidOptions, fmt.Sprintf(format, args...))
	}
	if o.Tol < 0 || math.IsNaN(o.Tol) {
		return fail("Tol %g is negative or NaN (0 selects the default 1e-8)", o.Tol)
	}
	if o.MaxIter < 0 {
		return fail("MaxIter %d is negative (0 selects the default 10·n)", o.MaxIter)
	}
	if o.Ranks < 0 {
		return fail("Ranks %d is negative (0 selects an automatic rank count)", o.Ranks)
	}
	if o.Filter < 0 || math.IsNaN(o.Filter) {
		return fail("Filter %g is negative or NaN (0 keeps every extension entry)", o.Filter)
	}
	if o.LineBytes < 0 {
		return fail("LineBytes %d is negative (0 selects 64)", o.LineBytes)
	}
	if o.PatternLevel < 0 {
		return fail("PatternLevel %d is negative (0 or 1 is the lower triangle of A)", o.PatternLevel)
	}
	if o.Threshold < 0 || math.IsNaN(o.Threshold) {
		return fail("Threshold %g is negative or NaN (0 keeps all entries)", o.Threshold)
	}
	if o.ResidualReplaceEvery < 0 {
		return fail("ResidualReplaceEvery %d is negative (0 disables replacement)", o.ResidualReplaceEvery)
	}
	if o.Nodes < 0 {
		return fail("Nodes %d is negative (0 means flat: one rank per node)", o.Nodes)
	}
	if o.RanksPerNode < 0 {
		return fail("RanksPerNode %d is negative (0 means flat: one rank per node)", o.RanksPerNode)
	}
	if o.Restart < 0 {
		return fail("Restart %d is negative (0 selects the default 30)", o.Restart)
	}
	if o.SPAISteps < 0 {
		return fail("SPAISteps %d is negative (0 keeps the static pattern)", o.SPAISteps)
	}
	if o.SPAIAdd < 0 {
		return fail("SPAIAdd %d is negative (0 selects the default 5)", o.SPAIAdd)
	}
	if o.SPAIEpsilon < 0 || math.IsNaN(o.SPAIEpsilon) {
		return fail("SPAIEpsilon %g is negative or NaN (0 selects the default 0.4)", o.SPAIEpsilon)
	}
	switch o.Method {
	case FSAI, FSAIE, FSAIEComm, SPAI:
	default:
		return fail("unknown method %d", int(o.Method))
	}
	switch o.Solver {
	case SolverCG, SolverGMRES:
	default:
		return fail("unknown solver %d (want SolverCG or SolverGMRES)", int(o.Solver))
	}
	// The solver and the preconditioner kind are coupled: SPAI is an explicit
	// right inverse only GMRES can apply, and GMRES has no use for the
	// factor pair of the FSAI family.
	if o.Method == SPAI && o.Solver != SolverGMRES {
		return fail("Method SPAI requires Solver SolverGMRES (SPAI is a right inverse for GMRES, not a CG factor pair)")
	}
	if o.Solver == SolverGMRES && o.Method != SPAI {
		return fail("Solver SolverGMRES requires Method SPAI (the FSAI family pairs with CG)")
	}
	if o.Solver == SolverGMRES {
		if o.CGVariant != CGClassic {
			return fail("GMRES has only the classic blocking schedule (leave CGVariant zero)")
		}
		if o.Precision == FP32 {
			return fail("FP32 iterative refinement is a CG-family feature; GMRES solves run FP64")
		}
	}
	switch o.Strategy {
	case StaticFilter, DynamicFilter:
	default:
		return fail("unknown filter strategy %d", int(o.Strategy))
	}
	switch o.Partitioner {
	case "", "multilevel", "block", "strip":
	default:
		return fail("unknown partitioner %q (want multilevel, block or strip)", o.Partitioner)
	}
	switch o.CGVariant {
	case CGClassic, CGClassicOverlap, CGFused, CGPipelined:
	default:
		return fail("unknown CG variant %d", int(o.CGVariant))
	}
	switch o.Transport {
	case "", "sim", "tcp":
	default:
		return fail("unknown transport %q (want sim or tcp)", o.Transport)
	}
	switch o.Precision {
	case FP64, FP32:
	default:
		return fail("unknown precision %d (want FP64 or FP32)", int(o.Precision))
	}
	if o.Arch != "" {
		if _, err := archmodel.ByName(o.Arch); err != nil {
			return fail("%v", err)
		}
	}
	return nil
}

// spaiConfig maps the facade options onto the core build config for an SPAI
// build (serial or distributed; the unused FSAI knobs stay zero).
func spaiConfig(opt Options) core.Config {
	return core.Config{
		Method:       SPAI,
		PatternLevel: opt.PatternLevel,
		Workers:      opt.Workers,
		SPAISteps:    opt.SPAISteps,
		SPAIAdd:      opt.SPAIAdd,
		SPAIEpsilon:  opt.SPAIEpsilon,
	}
}

func (o Options) withDefaults(n int) Options {
	if o.LineBytes == 0 {
		o.LineBytes = 64
	}
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 100 {
			o.MaxIter = 100
		}
	}
	return o
}

// Result reports a solve.
type Result struct {
	// X is the solution vector (original row order).
	X []float64
	// Iterations and Converged report the CG run; RelResidual is the final
	// relative residual.
	Iterations  int
	Converged   bool
	RelResidual float64
	// Refinements counts the FP64 iterative-refinement steps of a
	// mixed-precision (Options.Precision FP32) solve; Iterations then counts
	// the total inner iterations across all steps. Zero for FP64 solves.
	Refinements int
	// PctNNZIncrease is the preconditioner pattern growth versus the FSAI
	// baseline pattern (the paper's "% NNZ").
	PctNNZIncrease float64
	// Ranks is the number of simulated processes used (1 for Solve).
	Ranks int
	// CommBytes is the total point-to-point traffic during the solve phase
	// (0 for serial solves); CommMessages the point-to-point message count;
	// CommBytesPerIteration the per-iteration volume.
	CommBytes             int64
	CommMessages          int64
	CommBytesPerIteration float64
	// IntraNodeBytes/IntraNodeMessages and InterNodeBytes/InterNodeMessages
	// split the point-to-point totals by the two-level topology
	// (Options.Nodes/RanksPerNode): traffic between ranks on the same node vs
	// ranks on different nodes. Under the flat default every rank is its own
	// node, so all traffic is inter-node (Intra* stay 0) and
	// InterNodeBytes == CommBytes. The invariant
	// IntraNodeBytes+InterNodeBytes == CommBytes holds always.
	IntraNodeBytes    int64
	IntraNodeMessages int64
	InterNodeBytes    int64
	InterNodeMessages int64
	// CollectiveCalls and CollectiveBytes are the aggregate collective
	// totals over all ranks of the solve phase, from the simulated runtime's
	// meter (0 for serial solves). The serving layer accumulates these into
	// its /metrics report.
	CollectiveCalls, CollectiveBytes int64
	// ImbalanceIndex is avg/max per-rank preconditioner entries (1 =
	// balanced; only meaningful for distributed solves).
	ImbalanceIndex float64
	// SetupTime and SolveTime are wall-clock durations of preconditioner
	// construction and the CG loop.
	SetupTime, SolveTime time.Duration
	// ModeledSolveTime is the solve time in seconds under the α–β cost model
	// of the selected architecture profile (Options.Arch), with overlap
	// credit for the communication-hiding CG variants. The simulated runtime
	// serializes ranks, so SolveTime cannot show an overlap win;
	// ModeledSolveTime is the number to compare CG variants by (DESIGN.md
	// §4d). Zero for serial solves.
	ModeledSolveTime float64
	// Phases is the per-window breakdown of ModeledSolveTime (worst rank,
	// whole solve): per communication window ("halo", "reduction"), the raw
	// α–β time, the credit hidden behind overlapped compute, and the exposed
	// remainder. Phases.TotalSec == ModeledSolveTime exactly. Zero value for
	// serial solves.
	Phases OverlapReport
	// Trace is the per-iteration telemetry when Options.Trace is set (rank
	// 0's view in distributed solves), nil otherwise.
	Trace *IterTrace
}

// ErrNotSPD is returned when the input matrix is detectably not symmetric
// positive definite.
var ErrNotSPD = errors.New("fsaicomm: matrix is not symmetric positive definite")

// ErrCanceled is wrapped by the errors the context-aware entry points
// return when the supplied context is canceled (or its deadline passes)
// mid-solve. The partial Result accumulated so far is returned alongside
// the error.
var ErrCanceled = krylov.ErrCanceled

// ErrBreakdown is wrapped by the errors the solve entry points return when
// the CG recurrence breaks down (NaN/Inf, or non-positive curvature on a
// matrix that is not positive definite). The loop stops at the detecting
// iteration — on every rank of a distributed solve, at the same iteration —
// instead of spinning to MaxIter, and the partial Result so far is returned
// alongside the error.
var ErrBreakdown = krylov.ErrBreakdown

func checkInput(a *Matrix, b []float64, solver Solver) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("fsaicomm: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return fmt.Errorf("fsaicomm: rhs length %d, want %d", len(b), a.Rows)
	}
	if err := a.Validate(); err != nil {
		return fmt.Errorf("fsaicomm: invalid matrix: %w", err)
	}
	if !a.IsFinite() {
		return fmt.Errorf("%w: matrix contains NaN or Inf values", ErrInvalidOptions)
	}
	if err := checkFiniteRHS(b); err != nil {
		return err
	}
	return checkSolverMatrix(a, solver)
}

// checkSolverMatrix enforces the solver's matrix requirements at the
// boundary: the CG family needs symmetry (an FSAI factor pair of a
// nonsymmetric matrix is meaningless and CG would break down anyway), while
// GMRES accepts any square matrix. The CG rejection wraps both ErrNotSPD
// (what is wrong with the matrix) and ErrInvalidOptions (the fix is an
// options change: Method SPAI with Solver SolverGMRES), so both errors.Is
// classifications hold.
func checkSolverMatrix(a *Matrix, solver Solver) error {
	if solver == SolverGMRES {
		return nil
	}
	if !a.IsSymmetric(1e-10) {
		return fmt.Errorf("%w: pattern or values asymmetric (%w: nonsymmetric systems solve with Method SPAI and Solver SolverGMRES)",
			ErrNotSPD, ErrInvalidOptions)
	}
	return nil
}

// checkFiniteRHS rejects right-hand sides with NaN/Inf entries: a single
// non-finite component makes every residual NaN, so the solve can only end
// in breakdown — reject it at the boundary (and before it can poison a
// content-addressed cache) instead.
func checkFiniteRHS(b []float64) error {
	for i, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: rhs[%d] = %g is not finite", ErrInvalidOptions, i, v)
		}
	}
	return nil
}

// Solve runs a preconditioned CG solve A·x = b on a single process.
func Solve(a *Matrix, b []float64, opt Options) (*Result, error) {
	return SolveContext(context.Background(), a, b, opt)
}

// SolveContext is Solve with cancellation: the CG loop checks ctx once per
// iteration and, when it fires, returns the partial Result so far together
// with an ErrCanceled-wrapped error.
func SolveContext(ctx context.Context, a *Matrix, b []float64, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := checkInput(a, b, opt.Solver); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(a.Rows)
	t0 := time.Now()
	var pct float64
	var precond krylov.Preconditioner
	var g *sparse.CSR
	if opt.Solver == SolverGMRES {
		m, p, err := core.BuildSerialSPAI(a, spaiConfig(opt))
		if err != nil {
			return nil, err
		}
		pct, precond = p, &krylov.MatPrecond{M: m}
	} else {
		var err error
		g, pct, err = core.BuildSerialLevelWorkers(a, opt.Method, opt.Filter, opt.LineBytes, opt.PatternLevel, opt.Threshold, opt.Workers)
		if err != nil {
			return nil, err
		}
	}
	setup := time.Since(t0)
	x := make([]float64, a.Rows)
	t1 := time.Now()
	kopt := krylov.Options{Tol: opt.Tol, MaxIter: opt.MaxIter, Restart: opt.Restart, Trace: opt.Trace, Ctx: ctx}
	var st krylov.Stats
	var err error
	switch {
	case opt.Solver == SolverGMRES:
		st, err = krylov.GMRES(a, b, x, precond, kopt, nil)
	case opt.Precision == FP32:
		st, err = krylov.SolveRefined(a, b, x, krylov.NewSplit32(g, g.Transpose()), kopt, nil)
	default:
		st, err = krylov.CG(a, b, x, krylov.NewSplit(g, g.Transpose()), kopt, nil)
	}
	canceled := errors.Is(err, krylov.ErrCanceled)
	broken := errors.Is(err, krylov.ErrBreakdown)
	if err != nil && !errors.Is(err, krylov.ErrNoConvergence) && !canceled && !broken {
		return nil, err
	}
	res := &Result{
		X:              x,
		Iterations:     st.Iterations,
		Converged:      st.Converged,
		RelResidual:    st.RelResidual,
		Refinements:    st.Refinements,
		PctNNZIncrease: pct,
		Ranks:          1,
		ImbalanceIndex: 1,
		SetupTime:      setup,
		SolveTime:      time.Since(t1),
		Trace:          st.Trace,
	}
	if canceled || broken {
		return res, err
	}
	return res, nil
}

// AutoRanks resolves a requested simulated-process count the way the
// facade does: nonzero requests pass through; zero selects from the matrix
// size (≈16k entries per rank, clamped to 2..12). The serving layer uses
// it to canonicalize cache keys before a preconditioner is built.
func AutoRanks(a *Matrix, requested int) int {
	if requested != 0 {
		return requested
	}
	ranks := a.NNZ() / 16384
	if ranks < 2 {
		ranks = 2
	}
	if ranks > 12 {
		ranks = 12
	}
	return ranks
}

// partitionRows computes the row distribution selected by opt.Partitioner.
func partitionRows(a *Matrix, opt Options, ranks int) ([]int, error) {
	switch opt.Partitioner {
	case "", "multilevel":
		g := partition.GraphFromMatrix(a)
		return partition.Multilevel(g, ranks, partition.Options{Seed: opt.PartitionSeed})
	case "block":
		return partition.Block(a.Rows, ranks), nil
	case "strip":
		return partition.Strip(a.Rows, ranks), nil
	default:
		return nil, fmt.Errorf("fsaicomm: unknown partitioner %q (want multilevel, block or strip)", opt.Partitioner)
	}
}

// SolveDistributed partitions A over a simulated message-passing cluster,
// builds the selected preconditioner variant, and solves A·x = b with
// distributed CG. The returned X is in the caller's original row order.
func SolveDistributed(a *Matrix, b []float64, opt Options) (*Result, error) {
	return SolveDistributedContext(context.Background(), a, b, opt)
}

// SolveDistributedContext is SolveDistributed with cancellation: every rank
// of the distributed CG loop checks ctx once per iteration through a
// collective verdict, so all ranks stop at the same iteration boundary and
// the partial Result so far is returned with an ErrCanceled-wrapped error.
func SolveDistributedContext(ctx context.Context, a *Matrix, b []float64, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := checkInput(a, b, opt.Solver); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(a.Rows)
	ranks := AutoRanks(a, opt.Ranks)
	if ranks < 1 {
		return nil, fmt.Errorf("fsaicomm: ranks %d < 1", ranks)
	}
	topo, err := resolveTopology(ranks, opt.Nodes, opt.RanksPerNode)
	if err != nil {
		return nil, err
	}
	prof := archmodel.Skylake
	if opt.Arch != "" {
		var err error
		if prof, err = archmodel.ByName(opt.Arch); err != nil {
			return nil, fmt.Errorf("fsaicomm: %w", err)
		}
	}

	part, err := partitionRows(a, opt, ranks)
	if err != nil {
		return nil, err
	}
	pa, layout, oldToNew := distmat.ApplyPartition(a, part, ranks)
	pb := distmat.PermuteVec(b, oldToNew)

	spec := &mprun.SolveSpec{
		N:       a.Rows,
		Ranks:   ranks,
		Offsets: layout.Offsets,
		PA:      pa,
		PB:      pb,
		Cfg: core.Config{
			Method:       opt.Method,
			Filter:       opt.Filter,
			Strategy:     opt.Strategy,
			LineBytes:    opt.LineBytes,
			PatternLevel: opt.PatternLevel,
			Threshold:    opt.Threshold,
			Workers:      opt.Workers,
			CGVariant:    opt.CGVariant,
			Precision:    opt.Precision,
			SPAISteps:    opt.SPAISteps,
			SPAIAdd:      opt.SPAIAdd,
			SPAIEpsilon:  opt.SPAIEpsilon,
		},
		Solver:               opt.Solver,
		Restart:              opt.Restart,
		Tol:                  opt.Tol,
		MaxIter:              opt.MaxIter,
		Variant:              opt.CGVariant,
		Trace:                opt.Trace,
		ResidualReplaceEvery: opt.ResidualReplaceEvery,
		Arch:                 opt.Arch,
		Nodes:                topo.Nodes,
		RanksPerNode:         topo.RanksPerNode,
		NoNodeAggregation:    opt.NoNodeAggregation,
	}
	outs, err := runRanks(ctx, opt.Transport, ranks, topo, func(int) *mprun.JobSpec {
		return &mprun.JobSpec{Solve: spec}
	})
	if err != nil {
		return nil, err
	}
	return assembleDistResult(a.Rows, ranks, prof, opt.CGVariant, oldToNew, outs, 0, 0)
}

// resolveTopology maps a requested node grouping onto the resolved rank
// count. Both fields zero is the flat world; otherwise the missing side is
// derived and rank counts not divisible by the declared ranks-per-node are
// rejected with a descriptive error.
func resolveTopology(ranks, nodes, ranksPerNode int) (simmpi.Topology, error) {
	if nodes == 0 && ranksPerNode == 0 {
		return simmpi.Topology{}, nil
	}
	topo, err := simmpi.ResolveTopology(ranks, nodes, ranksPerNode)
	if err != nil {
		return simmpi.Topology{}, fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	return topo, nil
}

// runRanks executes one job per rank on the selected transport: "sim" (or
// empty) runs goroutine ranks over the in-process metered channels, "tcp"
// spawns one OS process per rank wired into a loopback socket mesh. Both
// paths run the identical mprun rank job, which is what makes their results
// and meters bit-identical. topo attaches the two-level node grouping to the
// sim world's meters; the tcp workers derive the same topology from the job
// spec itself.
func runRanks(ctx context.Context, transport string, ranks int, topo simmpi.Topology, jobFor func(rank int) *mprun.JobSpec) ([]*mprun.RankOutcome, error) {
	if transport == "tcp" {
		return mprun.Launch(ctx, ranks, time.Hour, jobFor)
	}
	outs := make([]*mprun.RankOutcome, ranks)
	_, err := simmpi.RunTopo(ranks, time.Hour, topo, func(c *simmpi.Comm) error {
		out, err := mprun.RunJob(ctx, c, jobFor(c.Rank()))
		if err != nil {
			return err
		}
		outs[c.Rank()] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// assembleDistResult folds the per-rank outcomes into the caller-facing
// Result. Communication totals are the sum of the per-rank solve-phase
// snapshot deltas — charged synchronously on each rank, so the totals are
// deterministic and identical across transports. pct/imb override the rank-0
// build metrics when the caller (the prepared path) already knows them.
func assembleDistResult(n, ranks int, prof archmodel.Profile, variant CGVariant, oldToNew []int, outs []*mprun.RankOutcome, pct, imb float64) (*Result, error) {
	root := outs[0]
	res := &Result{
		Ranks:          ranks,
		Iterations:     root.Iterations,
		Converged:      root.Converged,
		RelResidual:    root.RelResidual,
		Refinements:    root.Refinements,
		PctNNZIncrease: root.Pct,
		ImbalanceIndex: root.Imbalance,
		SetupTime:      time.Duration(root.SetupNanos),
		SolveTime:      time.Duration(root.SolveNanos),
		Trace:          root.Trace,
	}
	if pct != 0 {
		res.PctNNZIncrease = pct
	}
	if imb != 0 {
		res.ImbalanceIndex = imb
	}
	costs := make([]experiments.IterCostInputs, ranks)
	px := make([]float64, n)
	for r, out := range outs {
		if out == nil {
			return nil, fmt.Errorf("fsaicomm: rank %d reported no outcome", r)
		}
		costs[r] = out.Cost
		copy(px[out.Lo:out.Hi], out.XLocal)
		res.CommBytes += out.SolveComm.P2PBytes
		res.CommMessages += out.SolveComm.P2PMessages
		res.IntraNodeBytes += out.SolveComm.IntraP2PBytes
		res.IntraNodeMessages += out.SolveComm.IntraP2PMessages
		res.InterNodeBytes += out.SolveComm.InterP2PBytes
		res.InterNodeMessages += out.SolveComm.InterP2PMessages
		res.CollectiveCalls += out.SolveComm.CollectiveCalls
		res.CollectiveBytes += out.SolveComm.CollectiveBytes
	}
	if res.Iterations > 0 {
		res.CommBytesPerIteration = float64(res.CommBytes) / float64(res.Iterations)
	}
	res.ModeledSolveTime = experiments.ModeledSolveTime(prof, variant, res.Iterations, costs)
	res.Phases = experiments.ModeledPhases(prof, variant, res.Iterations, costs)
	// Un-permute the (possibly partial, under cancellation) solution.
	res.X = make([]float64, n)
	for i := range res.X {
		res.X[i] = px[oldToNew[i]]
	}
	if root.Canceled {
		return res, fmt.Errorf("fsaicomm: %w at iteration %d", krylov.ErrCanceled, res.Iterations)
	}
	if root.Broken {
		return res, fmt.Errorf("fsaicomm: %w at iteration %d (rel residual %g)", krylov.ErrBreakdown, res.Iterations, res.RelResidual)
	}
	return res, nil
}

// Architecture profiles for the experiment drivers (re-exported for
// cmd/fsaibench and the benches).
var (
	Skylake = archmodel.Skylake
	A64FX   = archmodel.A64FX
	Zen2    = archmodel.Zen2
)

// GeneratePoisson2D, GeneratePoisson3D and GenerateElasticity2D expose the
// most commonly useful synthetic SPD generators for quick experiments; the
// full catalog lives in internal/matgen and internal/testsets.
func GeneratePoisson2D(nx, ny int) *Matrix { return matgen.Poisson2D(nx, ny) }

// GeneratePoisson3D returns the 7-point Laplacian on an nx×ny×nz grid.
func GeneratePoisson3D(nx, ny, nz int) *Matrix { return matgen.Poisson3D(nx, ny, nz) }

// GenerateElasticity2D returns a 2-dof structural operator on an nx×ny grid.
func GenerateElasticity2D(nx, ny int, seed int64) *Matrix { return matgen.Elasticity2D(nx, ny, seed) }

// GenerateRHS returns a deterministic random right-hand side normalized to
// the matrix max norm (the paper's experimental setup).
func GenerateRHS(a *Matrix, seed int64) []float64 {
	return matgen.RandomRHS(a.Rows, seed, a.MaxNorm())
}

// GenerateConvectionDiffusion2D returns the 5-point upwind discretization of
// −Δu + p·(u_x + u_y) on an nx×ny grid: nonsymmetric for peclet > 0,
// increasingly skewed as peclet grows. The canonical SPAI+GMRES test
// operator.
func GenerateConvectionDiffusion2D(nx, ny int, peclet float64) *Matrix {
	return matgen.ConvectionDiffusion2D(nx, ny, peclet)
}

// GenerateNonsymCircuit returns a diagonally dominant nonsymmetric operator
// with directed-graph structure (a ring plus preferential-attachment arcs),
// resembling circuit-simulation matrices. Deterministic per seed.
func GenerateNonsymCircuit(n, avgDeg int, seed int64) *Matrix {
	return matgen.NonsymCircuit(n, avgDeg, seed)
}

// GenerateUnitRHS returns a deterministic random right-hand side scaled to
// unit 2-norm — the conventional GMRES setup, where the relative residual is
// measured against ‖b‖₂.
func GenerateUnitRHS(n int, seed int64) []float64 { return matgen.UnitRHS(n, seed) }

// RCM computes the reverse Cuthill–McKee ordering of a structurally
// symmetric matrix, returning oldToNew (the new index of old row i).
// Bandwidth-reducing orderings improve the index locality the cache-aware
// extension exploits.
func RCM(a *Matrix) ([]int, error) { return sparse.RCM(a) }

// PermuteSym applies the symmetric permutation P·A·Pᵀ.
func PermuteSym(a *Matrix, oldToNew []int) *Matrix { return sparse.PermuteSym(a, oldToNew) }

// Bandwidth returns the maximum |i−j| over stored entries.
func Bandwidth(a *Matrix) int { return sparse.Bandwidth(a) }

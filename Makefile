GO ?= go

.PHONY: all tier1 tier2 bench fuzz trace

all: tier1

# tier1: the fast correctness gate — full build + gofmt + vet + full test
# suite. The gofmt step fails (and lists the files) on any formatting diff.
tier1:
	$(GO) build ./...
	@fmt_out="$$(gofmt -l .)"; if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test ./...

# tier2: race-detector pass over the concurrency-bearing packages (the
# simulated MPI runtime, the worker pool, the row-parallel FSAI builds, and
# the distributed solver/operator layers).
tier2:
	$(GO) build ./...
	$(GO) test -race ./internal/simmpi/... ./internal/fsai/... ./internal/parallel/... ./internal/krylov/... ./internal/distmat/...

# bench: the serial-vs-parallel kernel pairs plus the CG-variant
# (classic/overlap/fused/pipelined) and blocking-vs-overlap SpMV comparisons
# on the ~50k-row case, and the BENCH_pipelined.json artifact with per-variant
# iterations, wall time, modeled time and meter totals.
bench:
	$(GO) test -run xxx -bench '50k' -benchmem .
	$(GO) run ./cmd/fsaibench -exp benchjson -out BENCH_pipelined.json

# trace: emit a sample per-iteration telemetry artifact — the consph-sim
# catalog instance solved with pipelined CG on 4 ranks, per-iteration
# residual/alpha/beta/communication deltas plus the per-window modeled-time
# split, as TRACE_pipelined.json.
trace:
	$(GO) run ./cmd/matgen -name consph-sim -o /tmp/fsaicomm-trace.mtx
	$(GO) run ./cmd/mmsolve -matrix /tmp/fsaicomm-trace.mtx -ranks 4 \
		-cg pipelined -trace TRACE_pipelined.json
	@rm -f /tmp/fsaicomm-trace.mtx

# fuzz: short exploration of each sparse-format fuzz target (seeds already
# run under plain `go test`).
fuzz:
	$(GO) test -fuzz FuzzCSRValidate -fuzztime 30s ./internal/sparse/
	$(GO) test -fuzz FuzzCOOToCSR -fuzztime 30s ./internal/sparse/
	$(GO) test -fuzz FuzzReadMatrixMarket -fuzztime 30s ./internal/sparse/

GO ?= go

.PHONY: all tier1 tier2 bench fuzz trace serve mp batch nodeaware spai cover

all: tier1

# tier1: the fast correctness gate — full build + gofmt + vet + full test
# suite. The gofmt step fails (and lists the files) on any formatting diff.
tier1:
	$(GO) build ./...
	@fmt_out="$$(gofmt -l .)"; if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test ./...

# tier2: race-detector pass over the concurrency-bearing packages (the
# simulated MPI runtime, the socket transport and the multi-process rank
# runner, the worker pool, the row-parallel FSAI builds, the batched SpMM
# and block vector kernels, the distributed solver/operator layers with the
# node-aware halo relay, the hierarchical cost model and experiment sweeps,
# the HTTP serving layer with its concurrent cached solves and job
# coalescing, the topology-carrying CLI, the column-parallel SPAI build
# with its dense QR kernel, and the root facade's cross-backend transport
# suite).
tier2:
	$(GO) build ./...
	$(GO) test -race ./internal/simmpi/... ./internal/tcpmpi/... ./internal/mprun/... ./internal/fsai/... ./internal/spai/... ./internal/dense/... ./internal/parallel/... ./internal/sparse/... ./internal/vecops/... ./internal/krylov/... ./internal/distmat/... ./internal/archmodel/... ./internal/experiments/... ./internal/serve/... ./cmd/fsaiserve/... ./cmd/mmsolve/... .

# bench: the serial-vs-parallel kernel pairs plus the CG-variant
# (classic/overlap/fused/pipelined), blocking-vs-overlap SpMV, and
# batched-vs-looped multi-RHS comparisons on the ~50k-row case, and three
# JSON artifacts: per-variant iterations/wall/modeled/meter totals
# (BENCH_pipelined.json), per-backend solve times (BENCH_transport.json),
# batched-vs-looped ns/RHS with the ~k× per-RHS communication drop
# (BENCH_batch.json + BENCH_batch.csv), and flat-vs-node-aware halo
# aggregation under a 2-node × 4-rank topology (BENCH_nodeaware.json),
# and fp64 vs fp32+refinement solves on both transports (BENCH_mixed.json).
# The nodeaware writer enforces its own structural gates — bit-identical
# solutions, unchanged inter-node bytes, strictly fewer inter-node
# messages, never-worse modeled time — and the mixed writer gates fp32
# halo bytes below 0.55x of fp64 for classic and fused CG, so a
# regression fails this target. The spai writer (BENCH_spai.json) gates
# the nonsymmetric axis: adaptive SPAI + restarted GMRES must converge in
# strictly fewer iterations than unpreconditioned GMRES on the
# Péclet-skewed instance at every measured rank count and backend.
bench:
	$(GO) test -run xxx -bench '50k' -benchmem .
	$(GO) run ./cmd/fsaibench -exp benchjson -out BENCH_pipelined.json
	$(GO) run ./cmd/fsaibench -exp transportjson -out BENCH_transport.json
	$(GO) run ./cmd/fsaibench -exp batchjson -out BENCH_batch.json -csv BENCH_batch.csv
	$(GO) run ./cmd/fsaibench -exp nodeawarejson -out BENCH_nodeaware.json
	$(GO) run ./cmd/fsaibench -exp mixedjson -transport both -out BENCH_mixed.json
	$(GO) run ./cmd/fsaibench -exp spaijson -transport both -out BENCH_spai.json

# trace: emit a sample per-iteration telemetry artifact — the consph-sim
# catalog instance solved with pipelined CG on 4 ranks, per-iteration
# residual/alpha/beta/communication deltas plus the per-window modeled-time
# split, as TRACE_pipelined.json.
trace:
	$(GO) run ./cmd/matgen -name consph-sim -o /tmp/fsaicomm-trace.mtx
	$(GO) run ./cmd/mmsolve -matrix /tmp/fsaicomm-trace.mtx -ranks 4 \
		-cg pipelined -trace TRACE_pipelined.json
	@rm -f /tmp/fsaicomm-trace.mtx

# serve: build the solver daemon, smoke-start it, probe /healthz with the
# binary's own -probe mode (no curl needed), and shut it down again. Proves
# the daemon boots and answers before anyone deploys it.
serve:
	$(GO) build -o bin/fsaiserve ./cmd/fsaiserve
	@./bin/fsaiserve -addr 127.0.0.1:8097 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	ok=1; for i in 1 2 3 4 5 6 7 8 9 10; do \
		sleep 0.3; \
		if ./bin/fsaiserve -probe http://127.0.0.1:8097/healthz; then ok=0; break; fi; \
	done; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$ok -ne 0 ]; then echo "fsaiserve smoke test failed"; exit 1; fi; \
	echo "fsaiserve smoke test passed"

# batch: job-coalescing smoke test — start the daemon with a 500ms
# enrollment window, wait for /healthz, then run the binary's own
# -batch-probe client: three concurrent same-system solves that must merge
# into one batched solve (verified through the responses and /metrics).
batch:
	$(GO) build -o bin/fsaiserve ./cmd/fsaiserve
	@./bin/fsaiserve -addr 127.0.0.1:8098 -batch-window 500ms -batch-max 3 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	ok=1; for i in 1 2 3 4 5 6 7 8 9 10; do \
		sleep 0.3; \
		if ./bin/fsaiserve -probe http://127.0.0.1:8098/healthz; then ok=0; break; fi; \
	done; \
	if [ $$ok -eq 0 ]; then \
		if ./bin/fsaiserve -batch-probe http://127.0.0.1:8098; then ok=0; else ok=1; fi; \
	fi; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$ok -ne 0 ]; then echo "fsaiserve batch smoke test failed"; exit 1; fi; \
	echo "fsaiserve batch smoke test passed"

# nodeaware: node-aware aggregation smoke test — solve one catalog instance
# on 4 ranks with the flat schedule and again under a 2-node × 2-rank
# topology (which prints the intra/inter meter split), then diff the two
# solution files: aggregation must not change a single bit of the answer.
nodeaware:
	$(GO) run ./cmd/matgen -name consph-sim -o /tmp/fsaicomm-nodeaware.mtx
	$(GO) run ./cmd/mmsolve -matrix /tmp/fsaicomm-nodeaware.mtx -ranks 4 \
		-cg pipelined -out /tmp/fsaicomm-nodeaware-flat.txt
	$(GO) run ./cmd/mmsolve -matrix /tmp/fsaicomm-nodeaware.mtx -ranks 4 \
		-cg pipelined -nodes 2 -ranks-per-node 2 -out /tmp/fsaicomm-nodeaware-nap.txt
	@if cmp -s /tmp/fsaicomm-nodeaware-flat.txt /tmp/fsaicomm-nodeaware-nap.txt; then \
		echo "node-aware smoke test passed: solutions bit-identical"; \
	else \
		echo "node-aware smoke test failed: solutions differ"; exit 1; \
	fi
	@rm -f /tmp/fsaicomm-nodeaware.mtx /tmp/fsaicomm-nodeaware-flat.txt /tmp/fsaicomm-nodeaware-nap.txt

# spai: nonsymmetric-axis smoke test — generate the upwind
# convection–diffusion catalog instance (nonsymmetric, so the CG family
# rejects it), solve it with the adaptive SPAI right inverse inside
# restarted GMRES on 4 flat ranks and again under a 2-node × 2-rank
# topology, then diff the two solution files: the node-aware schedule must
# not change a single bit of the answer on the GMRES path either.
spai:
	$(GO) run ./cmd/matgen -name convdiff-skew-sim -o /tmp/fsaicomm-spai.mtx
	$(GO) run ./cmd/mmsolve -matrix /tmp/fsaicomm-spai.mtx -method spai \
		-solver gmres -spai-steps 2 -ranks 4 -out /tmp/fsaicomm-spai-flat.txt
	$(GO) run ./cmd/mmsolve -matrix /tmp/fsaicomm-spai.mtx -method spai \
		-solver gmres -spai-steps 2 -ranks 4 -nodes 2 -ranks-per-node 2 \
		-out /tmp/fsaicomm-spai-nap.txt
	@if cmp -s /tmp/fsaicomm-spai-flat.txt /tmp/fsaicomm-spai-nap.txt; then \
		echo "spai smoke test passed: solutions bit-identical"; \
	else \
		echo "spai smoke test failed: solutions differ"; exit 1; \
	fi
	@rm -f /tmp/fsaicomm-spai.mtx /tmp/fsaicomm-spai-flat.txt /tmp/fsaicomm-spai-nap.txt

# mp: multi-process smoke test — build the rank worker binary and run its
# selfcheck, which solves one catalog instance on 4 goroutine ranks and
# again on 4 OS processes over the TCP mesh and diffs the two bit for bit
# (solution, iteration count, per-rank comm meters).
mp:
	$(GO) build -o bin/fsairank ./cmd/fsairank
	./bin/fsairank -selfcheck

# cover: per-package statement coverage for the whole module.
cover:
	$(GO) test -cover ./...

# fuzz: short exploration of each sparse-format fuzz target plus the dense
# QR least-squares kernel behind SPAI (seeds already run under plain
# `go test`).
fuzz:
	$(GO) test -fuzz FuzzCSRValidate -fuzztime 30s ./internal/sparse/
	$(GO) test -fuzz FuzzCOOToCSR -fuzztime 30s ./internal/sparse/
	$(GO) test -fuzz FuzzReadMatrixMarket -fuzztime 30s ./internal/sparse/
	$(GO) test -fuzz FuzzCSR32RoundTrip -fuzztime 30s ./internal/sparse/
	$(GO) test -fuzz FuzzQRLeastSquares -fuzztime 30s ./internal/dense/

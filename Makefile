GO ?= go

.PHONY: all tier1 tier2 bench fuzz

all: tier1

# tier1: the fast correctness gate — full build + vet + full test suite.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

# tier2: race-detector pass over the concurrency-bearing packages (the
# simulated MPI runtime, the worker pool, the row-parallel FSAI builds, and
# the distributed solver/operator layers).
tier2:
	$(GO) build ./...
	$(GO) test -race ./internal/simmpi/... ./internal/fsai/... ./internal/parallel/... ./internal/krylov/... ./internal/distmat/...

# bench: the serial-vs-parallel kernel pairs plus the CG-variant
# (classic/overlap/fused/pipelined) and blocking-vs-overlap SpMV comparisons
# on the ~50k-row case, and the BENCH_pipelined.json artifact with per-variant
# iterations, wall time, modeled time and meter totals.
bench:
	$(GO) test -run xxx -bench '50k' -benchmem .
	$(GO) run ./cmd/fsaibench -exp benchjson -out BENCH_pipelined.json

# fuzz: short exploration of each sparse-format fuzz target (seeds already
# run under plain `go test`).
fuzz:
	$(GO) test -fuzz FuzzCSRValidate -fuzztime 30s ./internal/sparse/
	$(GO) test -fuzz FuzzCOOToCSR -fuzztime 30s ./internal/sparse/
	$(GO) test -fuzz FuzzReadMatrixMarket -fuzztime 30s ./internal/sparse/

module fsaicomm

go 1.22

package fsaicomm

import (
	"errors"
	"fmt"
	"time"

	"fsaicomm/internal/core"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/sparse"
)

// Preconditioner is a built factorized approximate inverse GᵀG ≈ A⁻¹ that
// can be applied to many right-hand sides (serial). Build once with
// BuildPreconditioner, then call SolveWith per system, or Apply to use it
// inside a custom solver.
type Preconditioner struct {
	a      *Matrix
	split  *krylov.Split
	method Method
	prec   Precision
	// split32 is the float32 view of the factors, built when the
	// preconditioner was constructed with Options.Precision FP32; SolveWith
	// then runs the mixed-precision refinement loop.
	split32 *krylov.Split32
	pct     float64
	setup   time.Duration
	// work holds the CG iteration vectors across SolveWith calls, so
	// repeated solves with the same factor allocate no per-solve buffers
	// (beyond the returned solution). Part of why the Preconditioner is
	// documented as sequential-reuse only.
	work krylov.Workspace
}

// BuildPreconditioner constructs the selected FSAI variant for matrix a
// once. The returned Preconditioner is safe for sequential reuse across
// solves (not for concurrent Apply calls; it owns scratch buffers).
func BuildPreconditioner(a *Matrix, opt Options) (*Preconditioner, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := checkInputMatrix(a); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(a.Rows)
	t0 := time.Now()
	g, pct, err := core.BuildSerialLevelWorkers(a, opt.Method, opt.Filter, opt.LineBytes, opt.PatternLevel, opt.Threshold, opt.Workers)
	if err != nil {
		return nil, err
	}
	p := &Preconditioner{
		a:      a,
		split:  krylov.NewSplit(g, g.Transpose()),
		method: opt.Method,
		prec:   opt.Precision,
		pct:    pct,
		setup:  time.Since(t0),
	}
	if opt.Precision == FP32 {
		p.split32 = krylov.NewSplit32(p.split.G, p.split.GT)
	}
	return p, nil
}

func checkInputMatrix(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("fsaicomm: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	if err := a.Validate(); err != nil {
		return fmt.Errorf("fsaicomm: invalid matrix: %w", err)
	}
	if !a.IsFinite() {
		return fmt.Errorf("%w: matrix contains NaN or Inf values", ErrInvalidOptions)
	}
	if !a.IsSymmetric(1e-10) {
		return fmt.Errorf("%w: pattern or values asymmetric", ErrNotSPD)
	}
	return nil
}

// Method returns the preconditioner variant that was built.
func (p *Preconditioner) Method() Method { return p.method }

// PctNNZIncrease returns the pattern growth versus the FSAI baseline.
func (p *Preconditioner) PctNNZIncrease() float64 { return p.pct }

// SetupTime returns the wall-clock construction time.
func (p *Preconditioner) SetupTime() time.Duration { return p.setup }

// Factor returns the lower-triangular factor G (GᵀG ≈ A⁻¹). The returned
// matrix is shared; do not mutate it.
func (p *Preconditioner) Factor() *Matrix { return p.split.G }

// Apply computes z = Gᵀ(G·r), the preconditioning operation.
func (p *Preconditioner) Apply(r, z []float64) {
	if len(r) != p.a.Rows || len(z) != p.a.Rows {
		panic(fmt.Sprintf("fsaicomm: Apply length %d/%d, want %d", len(r), len(z), p.a.Rows))
	}
	p.split.Apply(r, z, nil)
}

// SolveWith runs preconditioned CG on A·x = b reusing the built factor.
// opt's method/filter fields are ignored (the factor is fixed); Tol,
// MaxIter apply.
func (p *Preconditioner) SolveWith(b []float64, opt Options) (*Result, error) {
	if len(b) != p.a.Rows {
		return nil, fmt.Errorf("fsaicomm: rhs length %d, want %d", len(b), p.a.Rows)
	}
	opt = opt.withDefaults(p.a.Rows)
	x := make([]float64, p.a.Rows)
	t0 := time.Now()
	kopt := krylov.Options{Tol: opt.Tol, MaxIter: opt.MaxIter, Work: &p.work}
	var st krylov.Stats
	var err error
	if p.prec == FP32 {
		st, err = krylov.SolveRefined(p.a, b, x, p.split32, kopt, nil)
	} else {
		st, err = krylov.CG(p.a, b, x, p.split, kopt, nil)
	}
	broken := errors.Is(err, krylov.ErrBreakdown)
	if err != nil && !errors.Is(err, krylov.ErrNoConvergence) && !broken {
		return nil, err
	}
	res := &Result{
		X:              x,
		Iterations:     st.Iterations,
		Converged:      st.Converged,
		RelResidual:    st.RelResidual,
		Refinements:    st.Refinements,
		PctNNZIncrease: p.pct,
		Ranks:          1,
		ImbalanceIndex: 1,
		SetupTime:      p.setup,
		SolveTime:      time.Since(t0),
	}
	if broken {
		return res, err
	}
	return res, nil
}

// Pattern returns the sparsity pattern of the factor for inspection.
func (p *Preconditioner) Pattern() *sparse.Pattern { return sparse.PatternOf(p.split.G) }

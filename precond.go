package fsaicomm

import (
	"errors"
	"fmt"
	"time"

	"fsaicomm/internal/core"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/sparse"
)

// Preconditioner is a built approximate inverse that can be applied to many
// right-hand sides (serial): the factorized GᵀG ≈ A⁻¹ of the FSAI family, or
// the explicit right inverse M ≈ A⁻¹ of SPAI. Build once with
// BuildPreconditioner, then call SolveWith per system, or Apply to use it
// inside a custom solver.
type Preconditioner struct {
	a      *Matrix
	split  *krylov.Split
	method Method
	prec   Precision
	// split32 is the float32 view of the factors, built when the
	// preconditioner was constructed with Options.Precision FP32; SolveWith
	// then runs the mixed-precision refinement loop.
	split32 *krylov.Split32
	// inv is the explicit SPAI inverse (Method SPAI only; split is then
	// nil) and restart the GMRES cycle length SolveWith uses.
	inv     *Matrix
	restart int
	pct     float64
	setup   time.Duration
	// work holds the Krylov iteration vectors across SolveWith calls, so
	// repeated solves with the same factor allocate no per-solve buffers
	// (beyond the returned solution). Part of why the Preconditioner is
	// documented as sequential-reuse only.
	work krylov.Workspace
}

// BuildPreconditioner constructs the selected variant for matrix a once.
// The returned Preconditioner is safe for sequential reuse across solves
// (not for concurrent Apply calls; it owns scratch buffers). Method SPAI
// (with Solver SolverGMRES) builds the explicit inverse of a general square
// matrix; the FSAI family requires symmetry.
func BuildPreconditioner(a *Matrix, opt Options) (*Preconditioner, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := checkInputMatrix(a, opt.Solver); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(a.Rows)
	t0 := time.Now()
	if opt.Method == SPAI {
		m, pct, err := core.BuildSerialSPAI(a, spaiConfig(opt))
		if err != nil {
			return nil, err
		}
		return &Preconditioner{
			a: a, inv: m, restart: opt.Restart,
			method: SPAI, pct: pct, setup: time.Since(t0),
		}, nil
	}
	g, pct, err := core.BuildSerialLevelWorkers(a, opt.Method, opt.Filter, opt.LineBytes, opt.PatternLevel, opt.Threshold, opt.Workers)
	if err != nil {
		return nil, err
	}
	p := &Preconditioner{
		a:      a,
		split:  krylov.NewSplit(g, g.Transpose()),
		method: opt.Method,
		prec:   opt.Precision,
		pct:    pct,
		setup:  time.Since(t0),
	}
	if opt.Precision == FP32 {
		p.split32 = krylov.NewSplit32(p.split.G, p.split.GT)
	}
	return p, nil
}

func checkInputMatrix(a *Matrix, solver Solver) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("fsaicomm: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	if err := a.Validate(); err != nil {
		return fmt.Errorf("fsaicomm: invalid matrix: %w", err)
	}
	if !a.IsFinite() {
		return fmt.Errorf("%w: matrix contains NaN or Inf values", ErrInvalidOptions)
	}
	return checkSolverMatrix(a, solver)
}

// Method returns the preconditioner variant that was built.
func (p *Preconditioner) Method() Method { return p.method }

// PctNNZIncrease returns the pattern growth versus the FSAI baseline.
func (p *Preconditioner) PctNNZIncrease() float64 { return p.pct }

// SetupTime returns the wall-clock construction time.
func (p *Preconditioner) SetupTime() time.Duration { return p.setup }

// Factor returns the lower-triangular factor G (GᵀG ≈ A⁻¹) of an FSAI-family
// preconditioner, or the explicit inverse M of an SPAI one. The returned
// matrix is shared; do not mutate it.
func (p *Preconditioner) Factor() *Matrix {
	if p.inv != nil {
		return p.inv
	}
	return p.split.G
}

// Apply computes the preconditioning operation: z = Gᵀ(G·r) for the FSAI
// family, z = M·r for SPAI.
func (p *Preconditioner) Apply(r, z []float64) {
	if len(r) != p.a.Rows || len(z) != p.a.Rows {
		panic(fmt.Sprintf("fsaicomm: Apply length %d/%d, want %d", len(r), len(z), p.a.Rows))
	}
	if p.inv != nil {
		p.inv.MulVec(r, z)
		return
	}
	p.split.Apply(r, z, nil)
}

// SolveWith runs preconditioned CG on A·x = b reusing the built factor.
// opt's method/filter fields are ignored (the factor is fixed); Tol,
// MaxIter apply.
func (p *Preconditioner) SolveWith(b []float64, opt Options) (*Result, error) {
	if len(b) != p.a.Rows {
		return nil, fmt.Errorf("fsaicomm: rhs length %d, want %d", len(b), p.a.Rows)
	}
	opt = opt.withDefaults(p.a.Rows)
	x := make([]float64, p.a.Rows)
	t0 := time.Now()
	restart := p.restart
	if opt.Restart > 0 {
		restart = opt.Restart
	}
	kopt := krylov.Options{Tol: opt.Tol, MaxIter: opt.MaxIter, Restart: restart, Work: &p.work}
	var st krylov.Stats
	var err error
	switch {
	case p.inv != nil:
		st, err = krylov.GMRES(p.a, b, x, &krylov.MatPrecond{M: p.inv}, kopt, nil)
	case p.prec == FP32:
		st, err = krylov.SolveRefined(p.a, b, x, p.split32, kopt, nil)
	default:
		st, err = krylov.CG(p.a, b, x, p.split, kopt, nil)
	}
	broken := errors.Is(err, krylov.ErrBreakdown)
	if err != nil && !errors.Is(err, krylov.ErrNoConvergence) && !broken {
		return nil, err
	}
	res := &Result{
		X:              x,
		Iterations:     st.Iterations,
		Converged:      st.Converged,
		RelResidual:    st.RelResidual,
		Refinements:    st.Refinements,
		PctNNZIncrease: p.pct,
		Ranks:          1,
		ImbalanceIndex: 1,
		SetupTime:      p.setup,
		SolveTime:      time.Since(t0),
	}
	if broken {
		return res, err
	}
	return res, nil
}

// Pattern returns the sparsity pattern of the factor (FSAI family) or the
// explicit inverse (SPAI) for inspection.
func (p *Preconditioner) Pattern() *sparse.Pattern { return sparse.PatternOf(p.Factor()) }

package fsaicomm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/experiments"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/simmpi"
)

// SolveOptions are the per-solve knobs of a Prepared system: everything in
// Options that does not change the partition or the preconditioner factors.
// The setup-shaping fields (Method, Filter, Ranks, Partitioner, ...) are
// fixed at Prepare time; trying to change them per solve would invalidate
// the cached factors, so they simply are not here.
type SolveOptions struct {
	// Tol is the relative residual target. Default 1e-8.
	Tol float64
	// MaxIter caps CG iterations. Default 10·n.
	MaxIter int
	// CGVariant selects the distributed CG loop (see Options.CGVariant).
	CGVariant CGVariant
	// Arch names the architecture profile for Result.ModeledSolveTime
	// ("skylake" default, "a64fx", "zen2").
	Arch string
	// Trace records per-iteration telemetry into Result.Trace (rank 0).
	Trace bool
	// ResidualReplaceEvery periodically recomputes the true residual in the
	// pipelined loop (see Options.ResidualReplaceEvery).
	ResidualReplaceEvery int
}

// Validate rejects nonsensical per-solve options, reusing the facade's
// single validator so the HTTP layer and the library agree on what a bad
// request is.
func (o SolveOptions) Validate() error {
	return Options{
		Tol:                  o.Tol,
		MaxIter:              o.MaxIter,
		CGVariant:            o.CGVariant,
		Arch:                 o.Arch,
		ResidualReplaceEvery: o.ResidualReplaceEvery,
	}.Validate()
}

// prepRank is one rank's share of a prepared system: the localized matrix
// and factor views (read-only during solves, shared by every solve) and the
// halo-plan schedules (cloned per solve; only their send buffers are
// mutable).
type prepRank struct {
	lo, hi               int
	aLZ, gLZ, gtLZ       *distmat.Localized
	aPlan, gPlan, gtPlan *distmat.HaloPlan
}

// Prepared is a fully set-up distributed system: partition, permutation,
// localized matrix, halo-plan schedules and preconditioner factors, built
// once by Prepare and reusable for any number of Solve calls — including
// concurrent ones. Each Solve spins up its own simulated world and derives
// private operators from the shared read-only parts with zero setup
// communication, so repeated solves pay only the Krylov loop. This is the
// unit the serving layer caches: one Prepared per (matrix fingerprint,
// setup options) pair.
type Prepared struct {
	n         int
	ranks     int
	setupOpt  Options // canonicalized setup options (informational)
	layout    *distmat.Layout
	oldToNew  []int
	parts     []prepRank
	pct       float64
	imbalance float64
	setup     time.Duration
	// pools hold per-rank krylov workspaces so steady-state solves allocate
	// only the solution vector. Indexed by rank: concurrent solves share the
	// pools, but a workspace is only ever used by one rank goroutine at a
	// time between Get and Put.
	pools []sync.Pool
}

// Prepare partitions A, builds the selected preconditioner variant and the
// halo schedules, and returns a Prepared system ready for repeated solves.
// The setup-phase communication (plan index exchange, remote row gather,
// distributed transpose) happens exactly once, here.
func Prepare(a *Matrix, opt Options) (*Prepared, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := checkInputMatrix(a); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(a.Rows)
	ranks := AutoRanks(a, opt.Ranks)
	if ranks < 1 {
		return nil, fmt.Errorf("fsaicomm: ranks %d < 1", ranks)
	}
	opt.Ranks = ranks

	part, err := partitionRows(a, opt, ranks)
	if err != nil {
		return nil, err
	}
	pa, layout, oldToNew := distmat.ApplyPartition(a, part, ranks)

	cfg := core.Config{
		Method:       opt.Method,
		Filter:       opt.Filter,
		Strategy:     opt.Strategy,
		LineBytes:    opt.LineBytes,
		PatternLevel: opt.PatternLevel,
		Threshold:    opt.Threshold,
		Workers:      opt.Workers,
		// The CG variant is chosen per solve; overlap views are built
		// lazily (and locally) on the per-solve operators, so the setup
		// builds the blocking schedule only.
		CGVariant: CGClassic,
	}
	p := &Prepared{
		n:        a.Rows,
		ranks:    ranks,
		setupOpt: opt,
		layout:   layout,
		oldToNew: oldToNew,
		parts:    make([]prepRank, ranks),
		pools:    make([]sync.Pool, ranks),
	}
	t0 := time.Now()
	if _, err := simmpi.Run(ranks, time.Hour, func(c *simmpi.Comm) error {
		lo, hi := layout.Range(c.Rank())
		aRows := distmat.ExtractLocalRows(pa, lo, hi)
		bd, err := core.BuildPrecond(c, layout, aRows, cfg)
		if err != nil {
			return err
		}
		aOp := distmat.NewOp(c, layout, lo, hi, aRows)
		p.parts[c.Rank()] = prepRank{
			lo: lo, hi: hi,
			aLZ: aOp.LZ, gLZ: bd.GOp.LZ, gtLZ: bd.GTOp.LZ,
			aPlan: aOp.Plan, gPlan: bd.GOp.Plan, gtPlan: bd.GTOp.Plan,
		}
		if c.Rank() == 0 {
			p.pct = bd.PctNNZIncrease
			p.imbalance = bd.ImbalanceIndex
		}
		return nil
	}); err != nil {
		return nil, err
	}
	p.setup = time.Since(t0)
	for i := range p.pools {
		p.pools[i].New = func() any { return &krylov.Workspace{} }
	}
	return p, nil
}

// Ranks returns the simulated-process count the system was prepared for.
func (p *Prepared) Ranks() int { return p.ranks }

// Rows returns the system dimension.
func (p *Prepared) Rows() int { return p.n }

// SetupTime returns the wall-clock cost of Prepare — the time every solve
// served from this Prepared avoids paying again.
func (p *Prepared) SetupTime() time.Duration { return p.setup }

// PctNNZIncrease returns the factor pattern growth versus the FSAI baseline.
func (p *Prepared) PctNNZIncrease() float64 { return p.pct }

// Options returns the canonicalized setup options (defaults applied,
// automatic rank count resolved).
func (p *Prepared) Options() Options { return p.setupOpt }

// SizeBytes estimates the memory retained by the prepared system — the
// localized matrix and factor copies plus the halo schedules — for cache
// byte-budget accounting. It ignores small fixed overheads.
func (p *Prepared) SizeBytes() int64 {
	var total int64
	lzBytes := func(lz *distmat.Localized) int64 {
		return 8 * int64(len(lz.M.RowPtr)+len(lz.M.ColIdx)+len(lz.M.Val)+len(lz.Halo))
	}
	planBytes := func(pl *distmat.HaloPlan) int64 {
		return 8 * int64(pl.SendCount()+pl.RecvCount()+len(pl.SendPeerIDs())+len(pl.RecvPeerIDs()))
	}
	for i := range p.parts {
		r := &p.parts[i]
		total += lzBytes(r.aLZ) + lzBytes(r.gLZ) + lzBytes(r.gtLZ)
		total += planBytes(r.aPlan) + planBytes(r.gPlan) + planBytes(r.gtPlan)
	}
	total += 8 * int64(len(p.oldToNew))
	return total
}

// Solve runs one distributed CG solve A·x = b on the prepared system. It
// performs no setup communication: every rank derives private operators
// from the shared localized views and cloned plan schedules, so the
// returned Result reports SetupTime 0. Safe to call concurrently from
// multiple goroutines; concurrent solves share the read-only parts and
// nothing else. Cancellation follows SolveDistributedContext: all ranks
// stop at the same iteration boundary and the partial Result comes back
// with an ErrCanceled-wrapped error.
func (p *Prepared) Solve(ctx context.Context, b []float64, so SolveOptions) (*Result, error) {
	if err := so.Validate(); err != nil {
		return nil, err
	}
	if len(b) != p.n {
		return nil, fmt.Errorf("fsaicomm: rhs length %d, want %d", len(b), p.n)
	}
	if so.Tol == 0 {
		so.Tol = 1e-8
	}
	if so.MaxIter == 0 {
		so.MaxIter = 10 * p.n
		if so.MaxIter < 100 {
			so.MaxIter = 100
		}
	}
	prof := archmodel.Skylake
	if so.Arch != "" {
		var err error
		if prof, err = archmodel.ByName(so.Arch); err != nil {
			return nil, fmt.Errorf("fsaicomm: %w", err)
		}
	}
	var opOpts []distmat.OpOption
	if so.CGVariant != CGClassic {
		opOpts = append(opOpts, distmat.WithOverlap())
	}

	pb := distmat.PermuteVec(b, p.oldToNew)
	px := make([]float64, p.n)
	costs := make([]experiments.IterCostInputs, p.ranks)
	res := &Result{
		Ranks:          p.ranks,
		PctNNZIncrease: p.pct,
		ImbalanceIndex: p.imbalance,
	}
	var cancelErr error
	t0 := time.Now()
	world, err := simmpi.Run(p.ranks, time.Hour, func(c *simmpi.Comm) error {
		r := &p.parts[c.Rank()]
		aOp := distmat.NewOpFromParts(r.aLZ, r.aPlan.Clone(), opOpts...)
		gOp := distmat.NewOpFromParts(r.gLZ, r.gPlan.Clone(), opOpts...)
		gtOp := distmat.NewOpFromParts(r.gtLZ, r.gtPlan.Clone(), opOpts...)
		costs[c.Rank()] = experiments.AssembleIterCost(prof, aOp, gOp, gtOp, r.hi-r.lo, p.ranks, so.CGVariant)
		xl := make([]float64, r.hi-r.lo)
		ws := p.pools[c.Rank()].Get().(*krylov.Workspace)
		defer p.pools[c.Rank()].Put(ws)
		st, err := krylov.DistCG(c, aOp, pb[r.lo:r.hi], xl,
			krylov.NewDistSplit(gOp, gtOp),
			krylov.Options{Tol: so.Tol, MaxIter: so.MaxIter,
				Variant: so.CGVariant, Work: ws,
				Trace:                so.Trace,
				ResidualReplaceEvery: so.ResidualReplaceEvery,
				Ctx:                  ctx}, nil)
		if err != nil && !errors.Is(err, krylov.ErrNoConvergence) && !errors.Is(err, krylov.ErrCanceled) {
			return err
		}
		copy(px[r.lo:r.hi], xl)
		if c.Rank() == 0 {
			res.Iterations = st.Iterations
			res.Converged = st.Converged
			res.RelResidual = st.RelResidual
			res.Trace = st.Trace
			if errors.Is(err, krylov.ErrCanceled) {
				cancelErr = err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.SolveTime = time.Since(t0)
	res.CommBytes = world.Meter().TotalP2PBytes()
	res.CollectiveCalls = world.Meter().TotalCollectiveCalls()
	res.CollectiveBytes = world.Meter().TotalCollectiveBytes()
	if res.Iterations > 0 {
		res.CommBytesPerIteration = float64(res.CommBytes) / float64(res.Iterations)
	}
	res.ModeledSolveTime = experiments.ModeledSolveTime(prof, so.CGVariant, res.Iterations, costs)
	res.Phases = experiments.ModeledPhases(prof, so.CGVariant, res.Iterations, costs)
	res.X = make([]float64, p.n)
	for i := range res.X {
		res.X[i] = px[p.oldToNew[i]]
	}
	if cancelErr != nil {
		return res, cancelErr
	}
	return res, nil
}

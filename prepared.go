package fsaicomm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/mprun"
	"fsaicomm/internal/simmpi"
)

// SolveOptions are the per-solve knobs of a Prepared system: everything in
// Options that does not change the partition or the preconditioner factors.
// The setup-shaping fields (Method, Filter, Ranks, Partitioner, ...) are
// fixed at Prepare time; trying to change them per solve would invalidate
// the cached factors, so they simply are not here.
type SolveOptions struct {
	// Tol is the relative residual target. Default 1e-8.
	Tol float64
	// MaxIter caps CG iterations. Default 10·n.
	MaxIter int
	// CGVariant selects the distributed CG loop (see Options.CGVariant).
	// Ignored by systems prepared for SPAI+GMRES, which run the classic
	// blocking schedule only.
	CGVariant CGVariant
	// Restart overrides the GMRES restart length for this solve (0 keeps
	// the Prepare-time Options.Restart). Ignored by CG-prepared systems.
	Restart int
	// Arch names the architecture profile for Result.ModeledSolveTime
	// ("skylake" default, "a64fx", "zen2").
	Arch string
	// Trace records per-iteration telemetry into Result.Trace (rank 0).
	Trace bool
	// ResidualReplaceEvery periodically recomputes the true residual in the
	// pipelined loop (see Options.ResidualReplaceEvery).
	ResidualReplaceEvery int
	// Transport selects the rank runtime: "sim" (default) or "tcp" (one OS
	// process per rank; the localized factors and halo schedules are shipped
	// to the workers, so the solve still pays no setup communication). See
	// Options.Transport.
	Transport string
	// Nodes and RanksPerNode declare a per-solve two-level topology (see
	// Options.Nodes). A cached prepared system can be solved under any node
	// grouping: the node-aware relay schedule derives from need counts
	// captured at Prepare time, with zero extra setup communication.
	Nodes        int
	RanksPerNode int
	// NoNodeAggregation keeps the flat per-rank halo schedule under the
	// declared topology (see Options.NoNodeAggregation).
	NoNodeAggregation bool
}

// Validate rejects nonsensical per-solve options, reusing the facade's
// single validator so the HTTP layer and the library agree on what a bad
// request is.
func (o SolveOptions) Validate() error {
	if o.Restart < 0 {
		return fmt.Errorf("%w: Restart %d is negative (0 keeps the Prepare-time value)", ErrInvalidOptions, o.Restart)
	}
	return Options{
		Tol:                  o.Tol,
		MaxIter:              o.MaxIter,
		CGVariant:            o.CGVariant,
		Arch:                 o.Arch,
		ResidualReplaceEvery: o.ResidualReplaceEvery,
		Transport:            o.Transport,
		Nodes:                o.Nodes,
		RanksPerNode:         o.RanksPerNode,
		NoNodeAggregation:    o.NoNodeAggregation,
	}.Validate()
}

// prepRank is one rank's share of a prepared system: the localized matrix
// and factor views (read-only during solves, shared by every solve) and the
// halo-plan schedules (cloned per solve; only their send buffers are
// mutable). CG systems carry the g/gt factor pair, GMRES systems the m
// inverse; the other set is nil.
type prepRank struct {
	lo, hi               int
	aLZ, gLZ, gtLZ       *distmat.Localized
	mLZ                  *distmat.Localized
	aPlan, gPlan, gtPlan *distmat.HaloPlan
	mPlan                *distmat.HaloPlan
}

// Prepared is a fully set-up distributed system: partition, permutation,
// localized matrix, halo-plan schedules and preconditioner factors, built
// once by Prepare and reusable for any number of Solve calls — including
// concurrent ones. Each Solve spins up its own simulated world and derives
// private operators from the shared read-only parts with zero setup
// communication, so repeated solves pay only the Krylov loop. This is the
// unit the serving layer caches: one Prepared per (matrix fingerprint,
// setup options) pair.
type Prepared struct {
	n         int
	ranks     int
	setupOpt  Options // canonicalized setup options (informational)
	layout    *distmat.Layout
	oldToNew  []int
	parts     []prepRank
	pct       float64
	imbalance float64
	setup     time.Duration
	// pools hold per-rank krylov workspaces so steady-state solves allocate
	// only the solution vector. Indexed by rank: concurrent solves share the
	// pools, but a workspace is only ever used by one rank goroutine at a
	// time between Get and Put.
	pools []sync.Pool
}

// Prepare partitions A, builds the selected preconditioner variant and the
// halo schedules, and returns a Prepared system ready for repeated solves.
// The setup-phase communication (plan index exchange, remote row gather,
// distributed transpose) happens exactly once, here.
func Prepare(a *Matrix, opt Options) (*Prepared, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := checkInputMatrix(a, opt.Solver); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(a.Rows)
	ranks := AutoRanks(a, opt.Ranks)
	if ranks < 1 {
		return nil, fmt.Errorf("fsaicomm: ranks %d < 1", ranks)
	}
	opt.Ranks = ranks

	part, err := partitionRows(a, opt, ranks)
	if err != nil {
		return nil, err
	}
	pa, layout, oldToNew := distmat.ApplyPartition(a, part, ranks)

	cfg := core.Config{
		Method:       opt.Method,
		Filter:       opt.Filter,
		Strategy:     opt.Strategy,
		LineBytes:    opt.LineBytes,
		PatternLevel: opt.PatternLevel,
		Threshold:    opt.Threshold,
		Workers:      opt.Workers,
		SPAISteps:    opt.SPAISteps,
		SPAIAdd:      opt.SPAIAdd,
		SPAIEpsilon:  opt.SPAIEpsilon,
		// The CG variant is chosen per solve; overlap views are built
		// lazily (and locally) on the per-solve operators, so the setup
		// builds the blocking schedule only. Precision is likewise applied
		// per solve (the rank job narrows its private operators; the float32
		// value view is cached on the shared Localized), so the build stays
		// the plain FP64 one.
		CGVariant: CGClassic,
	}
	p := &Prepared{
		n:        a.Rows,
		ranks:    ranks,
		setupOpt: opt,
		layout:   layout,
		oldToNew: oldToNew,
		parts:    make([]prepRank, ranks),
		pools:    make([]sync.Pool, ranks),
	}
	t0 := time.Now()
	if _, err := simmpi.Run(ranks, time.Hour, func(c *simmpi.Comm) error {
		lo, hi := layout.Range(c.Rank())
		aRows := distmat.ExtractLocalRows(pa, lo, hi)
		bd, err := core.BuildPrecond(c, layout, aRows, cfg)
		if err != nil {
			return err
		}
		aOp := distmat.NewOp(c, layout, lo, hi, aRows)
		pr := prepRank{lo: lo, hi: hi, aLZ: aOp.LZ, aPlan: aOp.Plan}
		if opt.Method == SPAI {
			pr.mLZ, pr.mPlan = bd.MOp.LZ, bd.MOp.Plan
		} else {
			pr.gLZ, pr.gtLZ = bd.GOp.LZ, bd.GTOp.LZ
			pr.gPlan, pr.gtPlan = bd.GOp.Plan, bd.GTOp.Plan
		}
		p.parts[c.Rank()] = pr
		if c.Rank() == 0 {
			p.pct = bd.PctNNZIncrease
			p.imbalance = bd.ImbalanceIndex
		}
		return nil
	}); err != nil {
		return nil, err
	}
	p.setup = time.Since(t0)
	for i := range p.pools {
		p.pools[i].New = func() any { return &krylov.Workspace{} }
	}
	return p, nil
}

// Ranks returns the simulated-process count the system was prepared for.
func (p *Prepared) Ranks() int { return p.ranks }

// Rows returns the system dimension.
func (p *Prepared) Rows() int { return p.n }

// SetupTime returns the wall-clock cost of Prepare — the time every solve
// served from this Prepared avoids paying again.
func (p *Prepared) SetupTime() time.Duration { return p.setup }

// PctNNZIncrease returns the factor pattern growth versus the FSAI baseline.
func (p *Prepared) PctNNZIncrease() float64 { return p.pct }

// Options returns the canonicalized setup options (defaults applied,
// automatic rank count resolved).
func (p *Prepared) Options() Options { return p.setupOpt }

// SizeBytes estimates the memory retained by the prepared system — the
// localized matrix and factor copies plus the halo schedules — for cache
// byte-budget accounting. It ignores small fixed overheads.
func (p *Prepared) SizeBytes() int64 {
	var total int64
	lzBytes := func(lz *distmat.Localized) int64 {
		if lz == nil {
			return 0
		}
		return 8 * int64(len(lz.M.RowPtr)+len(lz.M.ColIdx)+len(lz.M.Val)+len(lz.Halo))
	}
	planBytes := func(pl *distmat.HaloPlan) int64 {
		if pl == nil {
			return 0
		}
		return 8 * int64(pl.SendCount()+pl.RecvCount()+len(pl.SendPeerIDs())+len(pl.RecvPeerIDs()))
	}
	for i := range p.parts {
		r := &p.parts[i]
		total += lzBytes(r.aLZ) + lzBytes(r.gLZ) + lzBytes(r.gtLZ) + lzBytes(r.mLZ)
		total += planBytes(r.aPlan) + planBytes(r.gPlan) + planBytes(r.gtPlan) + planBytes(r.mPlan)
	}
	total += 8 * int64(len(p.oldToNew))
	return total
}

// Solve runs one distributed CG solve A·x = b on the prepared system. It
// performs no setup communication: every rank derives private operators
// from the shared localized views and cloned plan schedules, so the
// returned Result reports SetupTime 0. Safe to call concurrently from
// multiple goroutines; concurrent solves share the read-only parts and
// nothing else. Cancellation follows SolveDistributedContext: all ranks
// stop at the same iteration boundary and the partial Result comes back
// with an ErrCanceled-wrapped error.
func (p *Prepared) Solve(ctx context.Context, b []float64, so SolveOptions) (*Result, error) {
	if err := so.Validate(); err != nil {
		return nil, err
	}
	if len(b) != p.n {
		return nil, fmt.Errorf("fsaicomm: rhs length %d, want %d", len(b), p.n)
	}
	if so.Tol == 0 {
		so.Tol = 1e-8
	}
	if so.MaxIter == 0 {
		so.MaxIter = 10 * p.n
		if so.MaxIter < 100 {
			so.MaxIter = 100
		}
	}
	prof := archmodel.Skylake
	if so.Arch != "" {
		var err error
		if prof, err = archmodel.ByName(so.Arch); err != nil {
			return nil, fmt.Errorf("fsaicomm: %w", err)
		}
	}
	topo, err := resolveTopology(p.ranks, so.Nodes, so.RanksPerNode)
	if err != nil {
		return nil, err
	}

	gmres := p.setupOpt.Solver == SolverGMRES
	if gmres && so.CGVariant != CGClassic {
		return nil, fmt.Errorf("%w: this system was prepared for SPAI+GMRES, which has only the classic blocking schedule", ErrInvalidOptions)
	}
	restart := p.setupOpt.Restart
	if so.Restart > 0 {
		restart = so.Restart
	}
	pb := distmat.PermuteVec(b, p.oldToNew)
	specs := make([]*mprun.PreparedRankSpec, p.ranks)
	for r := range specs {
		pr := &p.parts[r]
		spec := &mprun.PreparedRankSpec{
			N: p.n, Ranks: p.ranks, Offsets: p.layout.Offsets,
			Lo: pr.lo, Hi: pr.hi,
			ALZ: pr.aLZ,
			// The schedules are read-only [][]int views; the rank job wraps
			// them in a fresh HaloPlan with private send buffers, which is
			// what Clone used to provide. The need counts captured at Prepare
			// time let a declared topology rebuild the node-aware relay
			// schedule locally.
			ASend: pr.aPlan.SendPeers, ARecv: pr.aPlan.RecvPeers,
			ACounts:              pr.aPlan.NeedCounts(),
			BLocal:               pb[pr.lo:pr.hi],
			Pct:                  p.pct,
			Imbalance:            p.imbalance,
			Solver:               p.setupOpt.Solver,
			Restart:              restart,
			Tol:                  so.Tol,
			MaxIter:              so.MaxIter,
			Variant:              so.CGVariant,
			Trace:                so.Trace,
			ResidualReplaceEvery: so.ResidualReplaceEvery,
			Arch:                 so.Arch,
			Precision:            p.setupOpt.Precision,
			Nodes:                topo.Nodes,
			RanksPerNode:         topo.RanksPerNode,
			NoNodeAggregation:    so.NoNodeAggregation,
		}
		if gmres {
			spec.MLZ = pr.mLZ
			spec.MSend, spec.MRecv = pr.mPlan.SendPeers, pr.mPlan.RecvPeers
			spec.MCounts = pr.mPlan.NeedCounts()
		} else {
			spec.GLZ, spec.GTLZ = pr.gLZ, pr.gtLZ
			spec.GSend, spec.GRecv = pr.gPlan.SendPeers, pr.gPlan.RecvPeers
			spec.GTSend, spec.GTRecv = pr.gtPlan.SendPeers, pr.gtPlan.RecvPeers
			spec.GCounts, spec.GTCounts = pr.gPlan.NeedCounts(), pr.gtPlan.NeedCounts()
		}
		specs[r] = spec
	}

	var outs []*mprun.RankOutcome
	if so.Transport == "tcp" {
		// The worker processes receive the localized factors over the wire;
		// their workspaces are fresh per process, so the pools stay local.
		outs, err = mprun.Launch(ctx, p.ranks, time.Hour, func(rank int) *mprun.JobSpec {
			return &mprun.JobSpec{Prepared: specs[rank]}
		})
	} else {
		outs = make([]*mprun.RankOutcome, p.ranks)
		_, err = simmpi.RunTopo(p.ranks, time.Hour, topo, func(c *simmpi.Comm) error {
			ws := p.pools[c.Rank()].Get().(*krylov.Workspace)
			defer p.pools[c.Rank()].Put(ws)
			out, err := mprun.RunPreparedRank(ctx, c, specs[c.Rank()], ws)
			if err != nil {
				return err
			}
			outs[c.Rank()] = out
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	return assembleDistResult(p.n, p.ranks, prof, so.CGVariant, p.oldToNew, outs, p.pct, p.imbalance)
}

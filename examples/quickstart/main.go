// Quickstart: build a 3D Poisson system, solve it with plain FSAI and with
// the communication-aware extended preconditioner, and compare iteration
// counts — the one-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"fsaicomm"
)

func main() {
	// A 7-point Laplacian on a 20x20x20 grid: the canonical SPD test system.
	a := fsaicomm.GeneratePoisson3D(20, 20, 20)
	b := fsaicomm.GenerateRHS(a, 42)
	fmt.Printf("system: %d unknowns, %d nonzeros\n\n", a.Rows, a.NNZ())

	for _, method := range []fsaicomm.Method{fsaicomm.FSAI, fsaicomm.FSAIE, fsaicomm.FSAIEComm} {
		res, err := fsaicomm.Solve(a, b, fsaicomm.Options{
			Method: method,
			Filter: 0.01,
		})
		if err != nil {
			log.Fatalf("%v: %v", method, err)
		}
		fmt.Printf("%-11v converged=%v iterations=%-5d pattern growth=%+6.2f%%  setup=%v solve=%v\n",
			method, res.Converged, res.Iterations, res.PctNNZIncrease,
			res.SetupTime.Round(0), res.SolveTime.Round(0))
	}

	fmt.Println("\nSame solve distributed over 8 simulated message-passing ranks:")
	res, err := fsaicomm.SolveDistributed(a, b, fsaicomm.Options{
		Method: fsaicomm.FSAIEComm,
		Filter: 0.01,
		Ranks:  8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ranks=%d iterations=%d comm=%d bytes (%.0f per iteration) imbalance index=%.3f\n",
		res.Ranks, res.Iterations, res.CommBytes, res.CommBytesPerIteration, res.ImbalanceIndex)
}

// Loadbalance: the §5.3.3 case study. A mesh with one densely coupled
// region produces a badly imbalanced pattern extension; the dynamic
// filtering-out strategy (Algorithm 4) raises the Filter value only on the
// overloaded ranks, restoring the imbalance index while keeping most of the
// iteration gains.
package main

import (
	"fmt"
	"log"
	"time"

	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/simmpi"
)

const ranks = 4

func main() {
	// First quarter of the rows: dense random couplings (an over-resolved
	// subdomain); rest: a near-singular grid that gates convergence.
	a := matgen.ImbalancedMesh(56, 56, 0.25, 10, 9)
	b := matgen.RandomRHS(a.Rows, 5, a.MaxNorm())
	layout := distmat.NewUniformLayout(a.Rows, ranks)
	fmt.Printf("system: %d unknowns, %d nonzeros, %d ranks (block layout)\n\n", a.Rows, a.NNZ(), ranks)

	type outcome struct {
		iters   int
		imb     float64
		nnz     []int64
		filters []float64
	}
	runCase := func(method core.Method, strategy core.FilterStrategy) outcome {
		var out outcome
		out.nnz = make([]int64, ranks)
		out.filters = make([]float64, ranks)
		_, err := simmpi.Run(ranks, time.Minute, func(c *simmpi.Comm) error {
			lo, hi := layout.Range(c.Rank())
			aRows := distmat.ExtractLocalRows(a, lo, hi)
			bd, err := core.BuildPrecond(c, layout, aRows, core.Config{
				Method: method, Filter: 0.01, Strategy: strategy, LineBytes: 64,
			})
			if err != nil {
				return err
			}
			out.nnz[c.Rank()] = int64(bd.GRows.NNZ())
			out.filters[c.Rank()] = bd.FilterUsed
			aOp := distmat.NewOp(c, layout, lo, hi, aRows)
			x := make([]float64, hi-lo)
			st, err := krylov.DistCG(c, aOp, b[lo:hi], x,
				krylov.NewDistSplit(bd.GOp, bd.GTOp), krylov.Options{MaxIter: 30000}, nil)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				out.iters = st.Iterations
				out.imb = bd.ImbalanceIndex
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return out
	}

	base := runCase(core.FSAI, core.StaticFilter)
	fmt.Printf("FSAI baseline:        iterations=%-5d imbalance index=%.3f per-rank G nnz=%v\n",
		base.iters, base.imb, base.nnz)
	st := runCase(core.FSAIEComm, core.StaticFilter)
	fmt.Printf("FSAIE-Comm static:    iterations=%-5d imbalance index=%.3f per-rank G nnz=%v\n",
		st.iters, st.imb, st.nnz)
	dy := runCase(core.FSAIEComm, core.DynamicFilter)
	fmt.Printf("FSAIE-Comm dynamic:   iterations=%-5d imbalance index=%.3f per-rank G nnz=%v\n",
		dy.iters, dy.imb, dy.nnz)
	fmt.Printf("                      per-rank Filter values after Algorithm 4: %.4v\n\n", dy.filters)

	fmt.Println("The static extension overloads the ranks holding the dense region;")
	fmt.Println("the dynamic filter raises only their Filter values, trading a little")
	fmt.Println("of the iteration gain for a balanced per-iteration cost.")
}

// Distributed: the paper's central claim made visible. A structural system
// is distributed over simulated MPI ranks; we build FSAI, FSAIE and
// FSAIE-Comm and show that (a) the communication plan — which unknowns each
// pair of ranks exchanges per halo update — is *identical* for FSAI and
// FSAIE-Comm even though the extended pattern has many more entries, and
// (b) the metered per-iteration traffic of the solve is byte-for-byte the
// same, while iterations drop.
package main

import (
	"fmt"
	"log"
	"time"

	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/partition"
	"fsaicomm/internal/simmpi"
)

const ranks = 6

func main() {
	a := matgen.Elasticity2D(28, 28, 7)
	b := matgen.RandomRHS(a.Rows, 3, a.MaxNorm())
	g := partition.GraphFromMatrix(a)
	part, err := partition.Multilevel(g, ranks, partition.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	pa, layout, _ := distmat.ApplyPartition(a, part, ranks)
	fmt.Printf("system: %d unknowns, %d nonzeros, %d ranks (multilevel partition)\n\n",
		pa.Rows, pa.NNZ(), ranks)

	for _, method := range []core.Method{core.FSAI, core.FSAIE, core.FSAIEComm} {
		var iters int
		var nnz int64
		recvPerRank := make([]int, ranks)
		peersPerRank := make([]int, ranks)
		world, err := simmpi.Run(ranks, time.Minute, func(c *simmpi.Comm) error {
			lo, hi := layout.Range(c.Rank())
			aRows := distmat.ExtractLocalRows(pa, lo, hi)
			bd, err := core.BuildPrecond(c, layout, aRows, core.Config{
				Method: method, Filter: 0, Strategy: core.StaticFilter, LineBytes: 64,
			})
			if err != nil {
				return err
			}
			recvPerRank[c.Rank()] = bd.GOp.Plan.RecvCount()
			peersPerRank[c.Rank()] = len(bd.GOp.Plan.RecvPeerIDs())
			aOp := distmat.NewOp(c, layout, lo, hi, aRows)
			c.Barrier()
			if c.Rank() == 0 {
				c.Meter().Reset() // meter only the solve loop
			}
			c.Barrier()
			x := make([]float64, hi-lo)
			st, err := krylov.DistCG(c, aOp, b[lo:hi], x,
				krylov.NewDistSplit(bd.GOp, bd.GTOp), krylov.Options{MaxIter: 20000}, nil)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				iters = st.Iterations
				nnz = bd.FinalNNZGlobal
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		perIter := float64(world.Meter().TotalP2PBytes()) / float64(iters)
		fmt.Printf("%-11v G nnz=%-6d iterations=%-5d solve traffic/iter=%8.1f B\n",
			method, nnz, iters, perIter)
		fmt.Printf("            per-rank halo recv counts (G product): %v, neighbour counts: %v\n",
			recvPerRank, peersPerRank)
	}
	fmt.Println("\nNote: FSAIE-Comm's G has more entries yet identical halo recv counts,")
	fmt.Println("neighbour sets and per-iteration bytes — the extension admitted only")
	fmt.Println("entries whose unknowns were already being exchanged.")
}

// Multirhs: build the preconditioner once, solve many right-hand sides —
// the time-stepping usage pattern (the paper's motivation mentions PDE
// solvers, which solve with the same matrix every step). The setup cost of
// the extended pattern amortizes across solves.
package main

import (
	"fmt"
	"log"
	"time"

	"fsaicomm"
)

func main() {
	a := fsaicomm.GenerateElasticity2D(24, 24, 7)
	fmt.Printf("system: %d unknowns, %d nonzeros (FEM plane stress)\n\n", a.Rows, a.NNZ())

	p, err := fsaicomm.BuildPreconditioner(a, fsaicomm.Options{
		Method: fsaicomm.FSAIEComm,
		Filter: 0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %v once: pattern growth %+.2f%%, setup %v\n\n",
		p.Method(), p.PctNNZIncrease(), p.SetupTime().Round(time.Microsecond))

	const steps = 5
	var totalIters int
	var totalSolve time.Duration
	for step := 1; step <= steps; step++ {
		b := fsaicomm.GenerateRHS(a, int64(step)) // stands in for the next time step's load
		res, err := p.SolveWith(b, fsaicomm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		totalIters += res.Iterations
		totalSolve += res.SolveTime
		fmt.Printf("step %d: %3d iterations, residual %.2e, %v\n",
			step, res.Iterations, res.RelResidual, res.SolveTime.Round(time.Microsecond))
	}
	fmt.Printf("\n%d solves reused one factorization: %d total iterations, %v total solve time\n",
		steps, totalIters, totalSolve.Round(time.Microsecond))
	fmt.Printf("setup amortized to %v per solve\n", (p.SetupTime() / steps).Round(time.Microsecond))
}

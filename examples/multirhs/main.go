// Multirhs: prepare the distributed system once, then solve many
// right-hand sides — the time-stepping usage pattern (the paper's
// motivation mentions PDE solvers, which solve with the same matrix every
// step). The example contrasts the two ways to spend the prepared system:
// a loop of scalar solves, and one batched Prepared.SolveBatch over the
// same columns. The batch runs the k recurrences in lockstep, so every
// halo exchange ships one k-wide message and every reduction is one
// k-wide collective where the loop pays k narrow ones — the per-RHS
// communication drops by ~k while each column's solution stays
// bit-identical to its scalar solve.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fsaicomm"
)

func main() {
	a := fsaicomm.GenerateElasticity2D(24, 24, 7)
	fmt.Printf("system: %d unknowns, %d nonzeros (FEM plane stress)\n\n", a.Rows, a.NNZ())

	p, err := fsaicomm.Prepare(a, fsaicomm.Options{
		Method: fsaicomm.FSAIEComm,
		Filter: 0.01,
		Ranks:  4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared once on %d ranks: pattern growth %+.2f%%, setup %v\n\n",
		p.Ranks(), p.PctNNZIncrease(), p.SetupTime().Round(time.Microsecond))

	const steps = 5
	ctx := context.Background()
	rhs := make([][]float64, steps)
	for c := range rhs {
		rhs[c] = fsaicomm.GenerateRHS(a, int64(c+1)) // stands in for time step c's load
	}

	// One scalar solve per step: each pays its own halo and reduction
	// schedule.
	var loopIters int
	var loopMsgs, loopColls int64
	var loopTime time.Duration
	for step, b := range rhs {
		res, err := p.Solve(ctx, b, fsaicomm.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		loopIters += res.Iterations
		loopMsgs += res.CommMessages
		loopColls += res.CollectiveCalls
		loopTime += res.SolveTime
		fmt.Printf("step %d (looped):  %3d iterations, residual %.2e, %v\n",
			step+1, res.Iterations, res.RelResidual, res.SolveTime.Round(time.Microsecond))
	}

	// The same steps as one batch: one communication schedule for all.
	br, err := p.SolveBatch(ctx, rhs, fsaicomm.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for c := range br.Cols {
		col := &br.Cols[c]
		fmt.Printf("step %d (batched): %3d iterations, residual %.2e\n",
			c+1, col.Iterations, col.RelResidual)
	}

	k := int64(steps)
	fmt.Printf("\nlooped:  %d iterations, %d halo messages, %d collectives, %v solve time\n",
		loopIters, loopMsgs, loopColls, loopTime.Round(time.Microsecond))
	fmt.Printf("batched: %d iterations, %d halo messages, %d collectives, %v solve time\n",
		br.Iterations, br.CommMessages, br.CollectiveCalls, br.SolveTime.Round(time.Microsecond))
	fmt.Printf("per RHS: %d -> %d halo messages (%.1fx), %d -> %d collectives (%.1fx)\n",
		loopMsgs/k, br.CommMessages/k, float64(loopMsgs)/float64(br.CommMessages),
		loopColls/k, br.CollectiveCalls/k, float64(loopColls)/float64(br.CollectiveCalls))
	fmt.Printf("setup amortized to %v per solve\n", (p.SetupTime() / steps).Round(time.Microsecond))
}

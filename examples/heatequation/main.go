// Heatequation: the paper's motivating workload shape — a PDE solver that
// solves a linear system with the same SPD matrix at every time step. We
// integrate the transient heat equation u_t = ∇·(κ∇u) on a 2D plate with
// implicit Euler: (M + Δt·K) uⁿ⁺¹ = M uⁿ. The system matrix is fixed, so
// each preconditioner is built once; the cumulative iteration counts over
// the simulation show where FSAIE-Comm's extra setup pays off.
package main

import (
	"fmt"
	"log"
	"time"

	"fsaicomm"
)

const (
	nx, ny = 48, 48
	steps  = 20
	dt     = 0.5
)

func main() {
	// K: anisotropic conductivity (strong along x, the memory direction);
	// A = I + dt*K is the implicit Euler operator (unit mass lumping).
	k := buildConductivity()
	a := k.Clone()
	a.Scale(dt)
	for i := 0; i < a.Rows; i++ {
		addDiag(a, i, 1)
	}
	fmt.Printf("implicit Euler heat equation: %d unknowns, %d steps, dt=%g\n\n", a.Rows, steps, dt)

	for _, method := range []fsaicomm.Method{fsaicomm.FSAI, fsaicomm.FSAIEComm} {
		p, err := fsaicomm.BuildPreconditioner(a, fsaicomm.Options{Method: method, Filter: 0.01})
		if err != nil {
			log.Fatal(err)
		}
		// Initial condition: hot square in the middle of the plate.
		u := make([]float64, a.Rows)
		for y := ny / 3; y < 2*ny/3; y++ {
			for x := nx / 3; x < 2*nx/3; x++ {
				u[y*nx+x] = 100
			}
		}
		totalIters := 0
		var solveTime time.Duration
		for step := 0; step < steps; step++ {
			res, err := p.SolveWith(u, fsaicomm.Options{})
			if err != nil {
				log.Fatal(err)
			}
			if !res.Converged {
				log.Fatalf("%v: step %d did not converge", method, step)
			}
			u = res.X
			totalIters += res.Iterations
			solveTime += res.SolveTime
		}
		// Energy check: total heat only leaves through the boundary.
		var heat float64
		for _, v := range u {
			heat += v
		}
		fmt.Printf("%-11v setup %8v | %3d total iterations over %d steps | solve %8v | final heat %.1f\n",
			method, p.SetupTime().Round(time.Microsecond), totalIters, steps,
			solveTime.Round(time.Microsecond), heat)
	}
	fmt.Println("\nThe system matrix is fixed across steps, so the richer FSAIE-Comm")
	fmt.Println("factor is built once and its iteration savings compound over the")
	fmt.Println("simulation (the time-stepping pattern the paper's intro motivates).")
	fmt.Println("Whether fewer-but-heavier iterations also win wall-clock depends on")
	fmt.Println("the per-iteration cost structure: on distributed hardware, where each")
	fmt.Println("iteration pays synchronization and latency, they do — that is what")
	fmt.Println("the paper's evaluation (and this repo's cost model) measures.")
}

// buildConductivity assembles the anisotropic 5-point conduction operator.
func buildConductivity() *fsaicomm.Matrix {
	const kx, ky = 8.0, 1.0
	c := fsaicomm.NewCOO(nx*ny, nx*ny)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			diag := 0.0
			if x > 0 {
				c.Add(i, id(x-1, y), -kx)
				diag += kx
			}
			if x < nx-1 {
				c.Add(i, id(x+1, y), -kx)
				diag += kx
			}
			if y > 0 {
				c.Add(i, id(x, y-1), -ky)
				diag += ky
			}
			if y < ny-1 {
				c.Add(i, id(x, y+1), -ky)
				diag += ky
			}
			c.Add(i, i, diag+0.05) // mild boundary leakage keeps it SPD
		}
	}
	return c.ToCSR()
}

func addDiag(a *fsaicomm.Matrix, i int, v float64) {
	cols, vals := a.Row(i)
	for k, c := range cols {
		if c == i {
			vals[k] += v
			return
		}
	}
	log.Fatalf("row %d has no diagonal", i)
}

// Reordering: the cache-friendly extension feeds on index locality — the
// entries sharing a cache line with x_j are x_{j±1..}, which are only
// numerically meaningful neighbours if the unknown ordering reflects the
// problem geometry. This example destroys the ordering of a grid problem
// with a random relabeling (the extension finds nothing admissible of
// value), then applies reverse Cuthill–McKee: RCM restores the bandwidth
// and re-admits many candidates, but its level-set adjacency is not
// geometric adjacency, so the iteration gains do not fully return —
// ordering quality matters beyond bandwidth, which is why the paper's
// mesh-ordered SuiteSparse inputs suit the method so well.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fsaicomm"
)

func main() {
	nx, ny := 40, 40
	ordered := fsaicomm.GeneratePoisson2D(nx, ny)

	// Randomly relabel the unknowns (what an unstructured mesh generator
	// without locality-aware numbering produces).
	n := ordered.Rows
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	shuffled := fsaicomm.PermuteSym(ordered, perm)

	// RCM recovers a low-bandwidth ordering from the shuffled matrix.
	rcmPerm, err := fsaicomm.RCM(shuffled)
	if err != nil {
		log.Fatal(err)
	}
	rcm := fsaicomm.PermuteSym(shuffled, rcmPerm)

	fmt.Printf("bandwidth: natural %d, shuffled %d, RCM %d\n\n",
		fsaicomm.Bandwidth(ordered), fsaicomm.Bandwidth(shuffled), fsaicomm.Bandwidth(rcm))

	fmt.Println("FSAI vs FSAIE-Comm (serial, filter 0.01, 64B lines):")
	for _, tc := range []struct {
		name string
		a    *fsaicomm.Matrix
	}{
		{"natural ordering", ordered},
		{"shuffled ordering", shuffled},
		{"RCM reordering", rcm},
	} {
		b := fsaicomm.GenerateRHS(tc.a, 3)
		base, err := fsaicomm.Solve(tc.a, b, fsaicomm.Options{Method: fsaicomm.FSAI})
		if err != nil {
			log.Fatal(err)
		}
		ext, err := fsaicomm.Solve(tc.a, b, fsaicomm.Options{Method: fsaicomm.FSAIEComm, Filter: 0.01})
		if err != nil {
			log.Fatal(err)
		}
		imp := 100 * float64(base.Iterations-ext.Iterations) / float64(base.Iterations)
		fmt.Printf("%-18s FSAI %3d iters -> FSAIE-Comm %3d iters (%.1f%% fewer, %+.1f%% NNZ)\n",
			tc.name+":", base.Iterations, ext.Iterations, imp, ext.PctNNZIncrease)
	}
	fmt.Println("\nShuffled labels make cache-line neighbours numerically unrelated, so")
	fmt.Println("the extension finds (almost) nothing worth keeping. RCM restores the")
	fmt.Println("bandwidth and re-admits candidates, but its level-set neighbours are")
	fmt.Println("not geometric neighbours, so the gains do not fully return: the")
	fmt.Println("extension's value depends on a geometry-respecting ordering, which")
	fmt.Println("the paper's mesh-ordered SuiteSparse inputs provide out of the box.")
}

// Cachelines: why A64FX gains more. The pattern extension admits every
// entry of the multiplying vector that shares a cache line with an entry the
// original pattern already touches — so a 256-byte line (A64FX) admits four
// times the candidates of a 64-byte line (Skylake/Zen 2), yielding bigger
// patterns, bigger iteration reductions, and (per the cache simulator)
// almost no additional misses on x.
package main

import (
	"fmt"
	"log"

	"fsaicomm"
	"fsaicomm/internal/cache"
	"fsaicomm/internal/core"
	"fsaicomm/internal/fsai"
	"fsaicomm/internal/matgen"
)

func main() {
	a := matgen.ThermalAniso(48, 48, 20, 1)
	b := fsaicomm.GenerateRHS(a, 11)
	fmt.Printf("system: %d unknowns, %d nonzeros (anisotropic thermal)\n\n", a.Rows, a.NNZ())

	base, err := fsaicomm.Solve(a, b, fsaicomm.Options{Method: fsaicomm.FSAI})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s iterations=%-5d\n", "FSAI baseline:", base.Iterations)

	for _, lineBytes := range []int{64, 256} {
		res, err := fsaicomm.Solve(a, b, fsaicomm.Options{
			Method:    fsaicomm.FSAIEComm,
			Filter:    0.01,
			LineBytes: lineBytes,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Measure simulated L1 misses on x for the unfiltered extended factor.
		s := fsai.LowerPattern(a)
		ext, err := core.ExtendPatternSerial(s, lineBytes)
		if err != nil {
			log.Fatal(err)
		}
		gBase, err := fsai.Build(a, s)
		if err != nil {
			log.Fatal(err)
		}
		gExt, err := fsai.Build(a, ext)
		if err != nil {
			log.Fatal(err)
		}
		sim := cache.MustNew(32*1024, lineBytes, 4)
		missBase := cache.MissesPerNNZ(gBase, gBase.Transpose(), sim)
		missExt := cache.MissesPerNNZ(gExt, gExt.Transpose(), sim)
		fmt.Printf("FSAIE-Comm %3dB lines: iterations=%-5d pattern growth=%+7.2f%%  misses/nnz %.4f -> %.4f\n",
			lineBytes, res.Iterations, res.PctNNZIncrease, missBase, missExt)
	}

	fmt.Println("\nWider lines admit larger extensions (more %NNZ, fewer iterations)")
	fmt.Println("while the misses per stored entry DROP — the added entries ride on")
	fmt.Println("cache lines the kernel was fetching anyway. This is the A64FX effect")
	fmt.Println("behind the paper's Table 5.")
}

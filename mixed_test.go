package fsaicomm

import (
	"context"
	"math"
	"testing"

	"fsaicomm/internal/experiments"
	"fsaicomm/internal/testsets"
)

// trueRelResidual recomputes ‖b − A·x‖/‖b‖ in FP64 from scratch — the
// accuracy check no solver-internal recurrence can fake.
func trueRelResidual(a *Matrix, b, x []float64) float64 {
	r := make([]float64, a.Rows)
	a.MulVec(x, r)
	var rr, bb float64
	for i := range r {
		d := b[i] - r[i]
		rr += d * d
		bb += b[i] * b[i]
	}
	return math.Sqrt(rr) / math.Sqrt(bb)
}

// TestMixedPrecisionReachesFP64Tolerance is the accuracy property of the
// mixed-precision claim: on every catalog fixture and CG variant, float32
// factors plus FP64 iterative refinement must reach the same tolerance a
// pure FP64 solve does — verified against an independently recomputed FP64
// residual, not the solver's own recurrence — at a bounded iteration
// overhead and with the refinement loop visibly engaged.
func TestMixedPrecisionReachesFP64Tolerance(t *testing.T) {
	for _, name := range []string{"Dubcova2-sim", "gyro-sim"} {
		t.Run(name, func(t *testing.T) {
			sp, err := testsets.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			a := sp.Generate()
			b := GenerateRHS(a, 11)
			prepared := map[Precision]*Prepared{}
			for _, prec := range []Precision{FP64, FP32} {
				p, err := Prepare(a, Options{Method: FSAI, Ranks: 4, Precision: prec})
				if err != nil {
					t.Fatalf("prepare %v: %v", prec, err)
				}
				prepared[prec] = p
			}
			const tol = 1e-8 // the facade default
			for _, v := range []CGVariant{CGClassic, CGFused, CGPipelined} {
				f64, err := prepared[FP64].Solve(context.Background(), b, SolveOptions{CGVariant: v})
				if err != nil {
					t.Fatalf("%v fp64: %v", v, err)
				}
				f32, err := prepared[FP32].Solve(context.Background(), b, SolveOptions{CGVariant: v})
				if err != nil {
					t.Fatalf("%v fp32: %v", v, err)
				}
				if !f64.Converged || !f32.Converged {
					t.Fatalf("%v: converged fp64=%v fp32=%v", v, f64.Converged, f32.Converged)
				}
				if f32.Refinements < 1 {
					t.Errorf("%v: fp32 solve reports %d refinements, want >= 1", v, f32.Refinements)
				}
				if f64.Refinements != 0 {
					t.Errorf("%v: fp64 solve reports %d refinements, want 0", v, f64.Refinements)
				}
				if rel := trueRelResidual(a, b, f32.X); rel > tol {
					t.Errorf("%v: fp32 true residual %g exceeds tolerance %g", v, rel, tol)
				}
				if f32.Iterations > 2*f64.Iterations {
					t.Errorf("%v: fp32 took %d inner iterations vs %d FP64 — refinement is not amortizing",
						v, f32.Iterations, f64.Iterations)
				}
			}
		})
	}
}

// TestMixedPrecisionSerial covers the serial refined path (Solve with
// Ranks 1) and the reusable-preconditioner path, which share Split32 but
// not the distributed refinement loop.
func TestMixedPrecisionSerial(t *testing.T) {
	a := GeneratePoisson2D(32, 32)
	b := GenerateRHS(a, 7)
	res, err := Solve(a, b, Options{Method: FSAI, Ranks: 1, Precision: FP32})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Refinements < 1 {
		t.Fatalf("serial fp32: converged=%v refinements=%d", res.Converged, res.Refinements)
	}
	if rel := trueRelResidual(a, b, res.X); rel > 1e-8 {
		t.Fatalf("serial fp32 true residual %g", rel)
	}

	m, err := BuildPreconditioner(a, Options{Method: FSAI, Precision: FP32})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m.SolveWith(b, Options{Method: FSAI, Precision: FP32})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged || res2.Refinements < 1 {
		t.Fatalf("preconditioner fp32: converged=%v refinements=%d", res2.Converged, res2.Refinements)
	}
	if rel := trueRelResidual(a, b, res2.X); rel > 1e-8 {
		t.Fatalf("preconditioner fp32 true residual %g", rel)
	}
}

// TestMixedPrecisionBatch checks the batched refined path: every column of
// a multi-RHS fp32 solve reaches the FP64 tolerance under refinement.
func TestMixedPrecisionBatch(t *testing.T) {
	a := GeneratePoisson2D(24, 24)
	rhs := [][]float64{GenerateRHS(a, 1), GenerateRHS(a, 2), GenerateRHS(a, 3)}
	res, err := SolveBatch(a, rhs, Options{Method: FSAI, Ranks: 4, Precision: FP32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Refinements < 1 {
		t.Fatalf("batch fp32 reports %d refinements", res.Refinements)
	}
	for col, cr := range res.Cols {
		if !cr.Converged || cr.Broken {
			t.Fatalf("column %d: converged=%v broken=%v", col, cr.Converged, cr.Broken)
		}
		if rel := trueRelResidual(a, rhs[col], cr.X); rel > 1e-8 {
			t.Errorf("column %d true residual %g", col, rel)
		}
	}
}

// TestMixedPrecisionTransportDifferential demands the goroutine and
// process backends run the refined solve bit-identically: same solution,
// same refinement count, same metered traffic.
func TestMixedPrecisionTransportDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	a := GeneratePoisson2D(24, 24)
	b := GenerateRHS(a, 5)
	p, err := Prepare(a, Options{Method: FSAI, Ranks: 4, Precision: FP32})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []CGVariant{CGClassic, CGFused, CGPipelined} {
		sim, err := p.Solve(context.Background(), b, SolveOptions{CGVariant: v})
		if err != nil {
			t.Fatalf("%v sim: %v", v, err)
		}
		tcp, err := p.Solve(context.Background(), b, SolveOptions{CGVariant: v, Transport: "tcp"})
		if err != nil {
			t.Fatalf("%v tcp: %v", v, err)
		}
		if tcp.Iterations != sim.Iterations || tcp.Refinements != sim.Refinements ||
			tcp.RelResidual != sim.RelResidual {
			t.Fatalf("%v: stats diverge: tcp (%d, %d, %g) vs sim (%d, %d, %g)",
				v, tcp.Iterations, tcp.Refinements, tcp.RelResidual,
				sim.Iterations, sim.Refinements, sim.RelResidual)
		}
		for i := range sim.X {
			if tcp.X[i] != sim.X[i] {
				t.Fatalf("%v: x[%d] diverges: tcp %v vs sim %v", v, i, tcp.X[i], sim.X[i])
			}
		}
		if tcp.CommBytes != sim.CommBytes || tcp.CollectiveCalls != sim.CollectiveCalls {
			t.Fatalf("%v: meters diverge: tcp (%d, %d) vs sim (%d, %d)",
				v, tcp.CommBytes, tcp.CollectiveCalls, sim.CommBytes, sim.CollectiveCalls)
		}
	}
}

// TestMixedPrecisionHalvesHaloBytes pins the communication claim on the
// wire, on both backends: on a solve long enough to amortize the
// refinement loop's fixed FP64 exchanges, the metered point-to-point bytes
// of the fp32 solve must stay at or below 0.55x of the FP64 baseline's for
// the classic and fused CG loops (the 0.05 above the theoretical 0.5 pays
// for the FP64 residual exchange per refinement and the few extra inner
// iterations the narrowed operator costs).
func TestMixedPrecisionHalvesHaloBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-row solves and worker processes")
	}
	a := experiments.BenchSpec().Generate()
	b := GenerateRHS(a, 11)
	prepared := map[Precision]*Prepared{}
	for _, prec := range []Precision{FP64, FP32} {
		p, err := Prepare(a, Options{Method: FSAI, Ranks: 8, Precision: prec})
		if err != nil {
			t.Fatalf("prepare %v: %v", prec, err)
		}
		prepared[prec] = p
	}
	for _, v := range []CGVariant{CGClassic, CGFused} {
		for _, transport := range []string{"sim", "tcp"} {
			f64, err := prepared[FP64].Solve(context.Background(), b, SolveOptions{CGVariant: v, Transport: transport})
			if err != nil {
				t.Fatalf("%s %v fp64: %v", transport, v, err)
			}
			f32, err := prepared[FP32].Solve(context.Background(), b, SolveOptions{CGVariant: v, Transport: transport})
			if err != nil {
				t.Fatalf("%s %v fp32: %v", transport, v, err)
			}
			if !f64.Converged || !f32.Converged {
				t.Fatalf("%s %v: converged fp64=%v fp32=%v", transport, v, f64.Converged, f32.Converged)
			}
			if limit := int64(0.55 * float64(f64.CommBytes)); f32.CommBytes > limit {
				t.Errorf("%s %v: fp32 halo bytes %d exceed 0.55x of fp64's %d (limit %d)",
					transport, v, f32.CommBytes, f64.CommBytes, limit)
			}
		}
	}
}

package fsaicomm

import (
	"context"
	"errors"
	"testing"
)

func batchRHS(a *Matrix, k int) [][]float64 {
	rhs := make([][]float64, k)
	for c := range rhs {
		rhs[c] = GenerateRHS(a, int64(40+c))
	}
	return rhs
}

// A batched solve is bit-identical per column to the scalar solve of that
// column alone — same solution vector, same iteration count, same final
// residual — for both batched CG variants, on the full-setup path.
func TestSolveBatchMatchesSolveDistributed(t *testing.T) {
	a := GenerateElasticity2D(9, 9, 3)
	const k = 3
	rhs := batchRHS(a, k)
	for _, v := range []CGVariant{CGClassic, CGFused} {
		opt := Options{Method: FSAIEComm, Filter: 0.01, Ranks: 3, CGVariant: v}
		br, err := SolveBatch(a, rhs, opt)
		if err != nil {
			t.Fatalf("%v: SolveBatch: %v", v, err)
		}
		if !br.AllConverged() {
			t.Fatalf("%v: batch did not converge", v)
		}
		maxIters := 0
		for c := 0; c < k; c++ {
			ref, err := SolveDistributed(a, rhs[c], opt)
			if err != nil {
				t.Fatalf("%v col %d: %v", v, c, err)
			}
			col := br.Cols[c]
			if col.Iterations != ref.Iterations || col.Converged != ref.Converged ||
				col.RelResidual != ref.RelResidual {
				t.Fatalf("%v col %d: stats (%d, %v, %g), scalar (%d, %v, %g)",
					v, c, col.Iterations, col.Converged, col.RelResidual,
					ref.Iterations, ref.Converged, ref.RelResidual)
			}
			for i := range ref.X {
				if col.X[i] != ref.X[i] {
					t.Fatalf("%v col %d: x[%d] = %g, scalar %g", v, c, i, col.X[i], ref.X[i])
				}
			}
			if ref.Iterations > maxIters {
				maxIters = ref.Iterations
			}
		}
		// The batch loop runs until its slowest column converges; columns
		// that converge earlier freeze at their own scalar iteration count.
		if br.Iterations != maxIters {
			t.Fatalf("%v: batch iterations %d, max scalar %d", v, br.Iterations, maxIters)
		}
	}
}

// The metered proof of the batching win, at the facade level: solving the
// SAME right-hand side k times in one batch costs exactly the scalar
// solve's collective calls and halo messages (a k× per-RHS drop), with k×
// the halo bytes (the same values, coalesced into one message per
// neighbour).
func TestPreparedSolveBatchMeteredKFoldDrop(t *testing.T) {
	a := GeneratePoisson2D(24, 24)
	b := GenerateRHS(a, 5)
	p, err := Prepare(a, Options{Method: FSAIEComm, Filter: 0.01, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	rhs := make([][]float64, k)
	for c := range rhs {
		rhs[c] = b
	}
	for _, v := range []CGVariant{CGClassic, CGFused} {
		solo, err := p.Solve(context.Background(), b, SolveOptions{CGVariant: v})
		if err != nil {
			t.Fatalf("%v solo: %v", v, err)
		}
		br, err := p.SolveBatch(context.Background(), rhs, SolveOptions{CGVariant: v})
		if err != nil {
			t.Fatalf("%v batch: %v", v, err)
		}
		for c := 0; c < k; c++ {
			if br.Cols[c].Iterations != solo.Iterations {
				t.Fatalf("%v col %d: %d iterations, solo %d", v, c, br.Cols[c].Iterations, solo.Iterations)
			}
			for i := range solo.X {
				if br.Cols[c].X[i] != solo.X[i] {
					t.Fatalf("%v col %d: x[%d] diverges from solo", v, c, i)
				}
			}
		}
		if solo.CommMessages == 0 || solo.CollectiveCalls == 0 {
			t.Fatalf("%v: degenerate solo meters (%d msgs, %d colls)", v, solo.CommMessages, solo.CollectiveCalls)
		}
		// k columns, the scalar schedule's message and collective counts:
		// per RHS both dropped exactly k×.
		if br.CollectiveCalls != solo.CollectiveCalls {
			t.Fatalf("%v: batch collective calls %d, solo %d (want equal: k-wide reductions)",
				v, br.CollectiveCalls, solo.CollectiveCalls)
		}
		if br.CommMessages != solo.CommMessages {
			t.Fatalf("%v: batch halo messages %d, solo %d (want equal: coalesced exchange)",
				v, br.CommMessages, solo.CommMessages)
		}
		if br.CommBytes != int64(k)*solo.CommBytes {
			t.Fatalf("%v: batch halo bytes %d, solo %d (want exactly k×)",
				v, br.CommBytes, solo.CommBytes)
		}
		if br.SetupTime != 0 {
			t.Fatalf("%v: prepared batch reports setup time %v", v, br.SetupTime)
		}
	}
}

// Prepared.SolveBatch with distinct RHS matches per-column Prepared.Solve
// bit for bit, and columns freeze at their own convergence points.
func TestPreparedSolveBatchDistinctRHS(t *testing.T) {
	a := GeneratePoisson2D(20, 20)
	p, err := Prepare(a, Options{Method: FSAIEComm, Filter: 0.01, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	rhs := batchRHS(a, k)
	br, err := p.SolveBatch(context.Background(), rhs, SolveOptions{CGVariant: CGFused})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < k; c++ {
		ref, err := p.Solve(context.Background(), rhs[c], SolveOptions{CGVariant: CGFused})
		if err != nil {
			t.Fatalf("col %d: %v", c, err)
		}
		if br.Cols[c].Iterations != ref.Iterations {
			t.Fatalf("col %d: %d iterations, scalar %d", c, br.Cols[c].Iterations, ref.Iterations)
		}
		for i := range ref.X {
			if br.Cols[c].X[i] != ref.X[i] {
				t.Fatalf("col %d: x[%d] = %g, scalar %g", c, i, br.Cols[c].X[i], ref.X[i])
			}
		}
	}
}

// The tcp transport runs the identical batched rank job: solution columns,
// per-column stats and the metered communication structure must match the
// sim backend bit for bit.
func TestSolveBatchTransportDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	a := GeneratePoisson2D(24, 24)
	const k = 3
	rhs := batchRHS(a, k)
	opt := Options{Method: FSAIEComm, Filter: 0.01, Ranks: 4, CGVariant: CGClassic}
	sim, err := SolveBatch(a, rhs, opt)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	opt.Transport = "tcp"
	tcp, err := SolveBatch(a, rhs, opt)
	if err != nil {
		t.Fatalf("tcp: %v", err)
	}
	if tcp.Iterations != sim.Iterations {
		t.Fatalf("iterations: tcp %d, sim %d", tcp.Iterations, sim.Iterations)
	}
	for c := 0; c < k; c++ {
		ts, ss := tcp.Cols[c], sim.Cols[c]
		if ts.Iterations != ss.Iterations || ts.Converged != ss.Converged || ts.RelResidual != ss.RelResidual {
			t.Fatalf("col %d stats diverge: tcp (%d, %v, %g) vs sim (%d, %v, %g)",
				c, ts.Iterations, ts.Converged, ts.RelResidual, ss.Iterations, ss.Converged, ss.RelResidual)
		}
		for i := range ss.X {
			if ts.X[i] != ss.X[i] {
				t.Fatalf("col %d x[%d] diverges: tcp %v vs sim %v", c, i, ts.X[i], ss.X[i])
			}
		}
	}
	if tcp.CommBytes != sim.CommBytes || tcp.CommMessages != sim.CommMessages ||
		tcp.CollectiveCalls != sim.CollectiveCalls || tcp.CollectiveBytes != sim.CollectiveBytes {
		t.Fatalf("meters diverge: tcp (%d B, %d msgs, %d calls, %d cB) vs sim (%d B, %d msgs, %d calls, %d cB)",
			tcp.CommBytes, tcp.CommMessages, tcp.CollectiveCalls, tcp.CollectiveBytes,
			sim.CommBytes, sim.CommMessages, sim.CollectiveCalls, sim.CollectiveBytes)
	}
}

// A prepared batched solve over tcp ships the cached factors once and gets
// the same bit-identity the in-process backend does.
func TestPreparedSolveBatchTransportDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	a := GeneratePoisson2D(24, 24)
	p, err := Prepare(a, Options{Method: FSAIEComm, Filter: 0.01, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	rhs := batchRHS(a, k)
	for _, v := range []CGVariant{CGClassic, CGFused} {
		sim, err := p.SolveBatch(context.Background(), rhs, SolveOptions{CGVariant: v})
		if err != nil {
			t.Fatalf("%v sim: %v", v, err)
		}
		tcp, err := p.SolveBatch(context.Background(), rhs, SolveOptions{CGVariant: v, Transport: "tcp"})
		if err != nil {
			t.Fatalf("%v tcp: %v", v, err)
		}
		for c := 0; c < k; c++ {
			if tcp.Cols[c].Iterations != sim.Cols[c].Iterations {
				t.Fatalf("%v col %d: iterations diverge", v, c)
			}
			for i := range sim.Cols[c].X {
				if tcp.Cols[c].X[i] != sim.Cols[c].X[i] {
					t.Fatalf("%v col %d: x[%d] diverges", v, c, i)
				}
			}
		}
		if tcp.CommBytes != sim.CommBytes || tcp.CommMessages != sim.CommMessages ||
			tcp.CollectiveCalls != sim.CollectiveCalls {
			t.Fatalf("%v: meters diverge: tcp (%d, %d, %d) vs sim (%d, %d, %d)", v,
				tcp.CommBytes, tcp.CommMessages, tcp.CollectiveCalls,
				sim.CommBytes, sim.CommMessages, sim.CollectiveCalls)
		}
	}
}

// Cancellation mid-batch stops every column at the same batch iteration and
// returns the partial per-column results with an ErrCanceled-wrapped error.
func TestSolveBatchCancellation(t *testing.T) {
	a := GeneratePoisson2D(16, 16)
	rhs := batchRHS(a, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	br, err := SolveBatchContext(ctx, a, rhs, Options{Ranks: 2})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveBatchContext: got %v, want ErrCanceled", err)
	}
	if br == nil || len(br.Cols) != 2 {
		t.Fatalf("SolveBatchContext: partial result %+v", br)
	}
	for c := range br.Cols {
		if br.Cols[c].Converged {
			t.Fatalf("col %d converged on a canceled solve", c)
		}
		if len(br.Cols[c].X) != a.Rows {
			t.Fatalf("col %d: partial X length %d", c, len(br.Cols[c].X))
		}
	}
	p, err := Prepare(a, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	br, err = p.SolveBatch(ctx, rhs, SolveOptions{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Prepared.SolveBatch: got %v, want ErrCanceled", err)
	}
	if br == nil || len(br.Cols) != 2 {
		t.Fatal("Prepared.SolveBatch: no partial result")
	}
}

// Batched entry points reject unsupported variants and malformed RHS
// blocks before any work happens.
func TestSolveBatchValidation(t *testing.T) {
	a := GeneratePoisson2D(8, 8)
	rhs := batchRHS(a, 2)
	p, err := Prepare(a, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []CGVariant{CGClassicOverlap, CGPipelined} {
		if _, err := SolveBatch(a, rhs, Options{CGVariant: v}); !errors.Is(err, ErrBatchVariant) {
			t.Errorf("SolveBatch variant %v: %v, want ErrBatchVariant", v, err)
		}
		if _, err := p.SolveBatch(context.Background(), rhs, SolveOptions{CGVariant: v}); !errors.Is(err, ErrBatchVariant) {
			t.Errorf("Prepared.SolveBatch variant %v: %v, want ErrBatchVariant", v, err)
		}
	}
	if _, err := SolveBatch(a, nil, Options{}); err == nil {
		t.Error("SolveBatch accepted an empty batch")
	}
	if _, err := p.SolveBatch(context.Background(), [][]float64{make([]float64, 3)}, SolveOptions{}); err == nil {
		t.Error("Prepared.SolveBatch accepted a short column")
	}
	if _, err := SolveBatch(a, [][]float64{rhs[0], make([]float64, 3)}, Options{}); err == nil {
		t.Error("SolveBatch accepted a ragged batch")
	}
	if _, err := SolveBatch(a, rhs, Options{MaxIter: -1}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("SolveBatch bad options: %v", err)
	}
}

package fsaicomm

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"fsaicomm/internal/mprun"
	"fsaicomm/internal/testsets"
)

// TestMain lets this test binary self-host the rank worker processes the
// "tcp" transport spawns: mprun.Launch re-executes the current binary, and
// MaybeWorker diverts those copies into worker mode before any test runs.
func TestMain(m *testing.M) {
	mprun.MaybeWorker()
	os.Exit(m.Run())
}

// TestSolveDistributedTransportDifferential is the end-to-end cross-backend
// check of the issue: the same solve through goroutine ranks and through one
// OS process per rank must agree bit for bit — solution vector, iteration
// count, and the metered communication structure.
func TestSolveDistributedTransportDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	for _, name := range []string{"Dubcova2-sim", "gyro-sim"} {
		t.Run(name, func(t *testing.T) {
			sp, err := testsets.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			a := sp.Generate()
			b := GenerateRHS(a, 11)
			opt := Options{Method: FSAIEComm, Filter: 0.01, Ranks: 4}

			sim, err := SolveDistributed(a, b, opt)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			if !sim.Converged {
				t.Fatalf("sim did not converge in %d iterations", sim.Iterations)
			}
			opt.Transport = "tcp"
			tcp, err := SolveDistributed(a, b, opt)
			if err != nil {
				t.Fatalf("tcp: %v", err)
			}

			if tcp.Iterations != sim.Iterations || tcp.Converged != sim.Converged ||
				tcp.RelResidual != sim.RelResidual {
				t.Errorf("stats diverge: tcp (%d, %v, %g) vs sim (%d, %v, %g)",
					tcp.Iterations, tcp.Converged, tcp.RelResidual,
					sim.Iterations, sim.Converged, sim.RelResidual)
			}
			for i := range sim.X {
				if tcp.X[i] != sim.X[i] {
					t.Fatalf("x[%d] diverges: tcp %v vs sim %v", i, tcp.X[i], sim.X[i])
				}
			}
			if tcp.CommBytes != sim.CommBytes ||
				tcp.CollectiveCalls != sim.CollectiveCalls ||
				tcp.CollectiveBytes != sim.CollectiveBytes {
				t.Errorf("meter structure diverges: tcp (p2p %d, coll %d calls / %d bytes) vs sim (p2p %d, coll %d calls / %d bytes)",
					tcp.CommBytes, tcp.CollectiveCalls, tcp.CollectiveBytes,
					sim.CommBytes, sim.CollectiveCalls, sim.CollectiveBytes)
			}
			if tcp.PctNNZIncrease != sim.PctNNZIncrease || tcp.ImbalanceIndex != sim.ImbalanceIndex {
				t.Errorf("build metrics diverge: tcp (%g, %g) vs sim (%g, %g)",
					tcp.PctNNZIncrease, tcp.ImbalanceIndex, sim.PctNNZIncrease, sim.ImbalanceIndex)
			}
			if tcp.ModeledSolveTime != sim.ModeledSolveTime {
				t.Errorf("modeled time diverges: tcp %g vs sim %g", tcp.ModeledSolveTime, sim.ModeledSolveTime)
			}
		})
	}
}

// TestPreparedSolveTransportDifferential ships the cached factors to worker
// processes and demands the same bit-identity a fresh solve gets; the
// prepared path must also stay free of setup traffic on the wire.
func TestPreparedSolveTransportDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	a := GeneratePoisson2D(24, 24)
	b := GenerateRHS(a, 5)
	p, err := Prepare(a, Options{Method: FSAIEComm, Filter: 0.01, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []CGVariant{CGClassic, CGFused, CGPipelined} {
		sim, err := p.Solve(context.Background(), b, SolveOptions{CGVariant: v})
		if err != nil {
			t.Fatalf("%v sim: %v", v, err)
		}
		tcp, err := p.Solve(context.Background(), b, SolveOptions{CGVariant: v, Transport: "tcp"})
		if err != nil {
			t.Fatalf("%v tcp: %v", v, err)
		}
		if tcp.Iterations != sim.Iterations || tcp.RelResidual != sim.RelResidual {
			t.Fatalf("%v: stats diverge: tcp (%d, %g) vs sim (%d, %g)",
				v, tcp.Iterations, tcp.RelResidual, sim.Iterations, sim.RelResidual)
		}
		for i := range sim.X {
			if tcp.X[i] != sim.X[i] {
				t.Fatalf("%v: x[%d] diverges: tcp %v vs sim %v", v, i, tcp.X[i], sim.X[i])
			}
		}
		if tcp.CommBytes != sim.CommBytes || tcp.CollectiveCalls != sim.CollectiveCalls {
			t.Fatalf("%v: meters diverge: tcp (%d, %d) vs sim (%d, %d)",
				v, tcp.CommBytes, tcp.CollectiveCalls, sim.CommBytes, sim.CollectiveCalls)
		}
		if tcp.SetupTime != 0 {
			t.Fatalf("%v: prepared tcp solve reports setup time %v", v, tcp.SetupTime)
		}
	}
}

// TestNodeAwareTransportDifferential is the end-to-end proof of the
// node-aware aggregation claim, across every CG variant and both backends:
// under a declared 2-node × 2-rank topology the aggregated exchange must
// leave the solution, the iteration count and the inter-node byte volume
// bit-identical to the flat per-rank schedule while strictly reducing the
// inter-node message count — and the goroutine and process backends must
// meter all of it identically.
func TestNodeAwareTransportDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	a := GeneratePoisson2D(24, 24)
	b := GenerateRHS(a, 5)
	p, err := Prepare(a, Options{Method: FSAIEComm, Filter: 0.01, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []CGVariant{CGClassic, CGFused, CGPipelined} {
		var simNap *Result
		for _, tr := range []string{"", "tcp"} {
			so := SolveOptions{CGVariant: v, Transport: tr, Nodes: 2, RanksPerNode: 2}
			so.NoNodeAggregation = true
			flat, err := p.Solve(context.Background(), b, so)
			if err != nil {
				t.Fatalf("%v %q flat: %v", v, tr, err)
			}
			so.NoNodeAggregation = false
			nap, err := p.Solve(context.Background(), b, so)
			if err != nil {
				t.Fatalf("%v %q node-aware: %v", v, tr, err)
			}
			if nap.Iterations != flat.Iterations || nap.RelResidual != flat.RelResidual {
				t.Fatalf("%v %q: stats diverge: node-aware (%d, %g) vs flat (%d, %g)",
					v, tr, nap.Iterations, nap.RelResidual, flat.Iterations, flat.RelResidual)
			}
			for i := range flat.X {
				if nap.X[i] != flat.X[i] {
					t.Fatalf("%v %q: x[%d] diverges: node-aware %v vs flat %v", v, tr, i, nap.X[i], flat.X[i])
				}
			}
			for _, r := range []*Result{flat, nap} {
				if r.IntraNodeBytes+r.InterNodeBytes != r.CommBytes ||
					r.IntraNodeMessages+r.InterNodeMessages != r.CommMessages {
					t.Fatalf("%v %q: topology split does not sum to the totals: intra %d/%d + inter %d/%d vs %d/%d",
						v, tr, r.IntraNodeMessages, r.IntraNodeBytes,
						r.InterNodeMessages, r.InterNodeBytes, r.CommMessages, r.CommBytes)
				}
			}
			if nap.InterNodeBytes != flat.InterNodeBytes {
				t.Fatalf("%v %q: aggregation changed inter-node bytes: flat %d, node-aware %d",
					v, tr, flat.InterNodeBytes, nap.InterNodeBytes)
			}
			if nap.InterNodeMessages >= flat.InterNodeMessages {
				t.Fatalf("%v %q: aggregation did not reduce inter-node messages: flat %d, node-aware %d",
					v, tr, flat.InterNodeMessages, nap.InterNodeMessages)
			}
			if tr == "" {
				simNap = nap
				continue
			}
			// Cross-backend: the process mesh must reproduce the goroutine
			// world bit for bit, meters included.
			if nap.IntraNodeBytes != simNap.IntraNodeBytes || nap.IntraNodeMessages != simNap.IntraNodeMessages ||
				nap.InterNodeBytes != simNap.InterNodeBytes || nap.InterNodeMessages != simNap.InterNodeMessages {
				t.Fatalf("%v: meters diverge across backends: tcp intra %d/%d inter %d/%d vs sim intra %d/%d inter %d/%d",
					v, nap.IntraNodeMessages, nap.IntraNodeBytes, nap.InterNodeMessages, nap.InterNodeBytes,
					simNap.IntraNodeMessages, simNap.IntraNodeBytes, simNap.InterNodeMessages, simNap.InterNodeBytes)
			}
			for i := range simNap.X {
				if nap.X[i] != simNap.X[i] {
					t.Fatalf("%v: node-aware x[%d] diverges across backends: tcp %v vs sim %v",
						v, i, nap.X[i], simNap.X[i])
				}
			}
		}
	}
}

// TestPreparedSolveTCPCancel cancels a multi-process prepared solve
// mid-flight: the workers must wind down within the kill grace, and the
// caller gets the partial Result with an ErrCanceled-wrapped error — the
// same contract the in-process backend honors.
func TestPreparedSolveTCPCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	// The tiny (but positive: zero means "default") tolerance cannot be met
	// until the recurrence residual underflows to exactly zero, which on
	// this fixture takes ~1.5s of multi-process solving (measured; the
	// underflow bounds how long ANY tiny-tolerance run can last, so "run
	// forever" is not an option). The cancel is timed well inside that
	// window: the solve is underway within ~0.1s of Solve being called.
	a := GeneratePoisson2D(96, 96)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)/7
	}
	p, err := Prepare(a, Options{Method: FSAIEComm, Filter: 0.01, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := p.Solve(ctx, b, SolveOptions{Tol: 1e-300, MaxIter: 1 << 30, Transport: "tcp"})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got error %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancel took %v to wind down", elapsed)
	}
	if res == nil {
		t.Fatal("no partial result alongside ErrCanceled")
	}
	if len(res.X) != a.Rows {
		t.Fatalf("partial X length %d, want %d", len(res.X), a.Rows)
	}
	if res.Converged {
		t.Fatal("Converged = true on a canceled solve")
	}
	if res.Iterations == 0 {
		t.Fatal("Iterations = 0: cancel landed before the solve started?")
	}
}
